package core

import "errors"

// ErrBadInput classifies caller mistakes at the pipeline's orchestration
// layer: nil circuits, results without placements, option combinations a
// given entry point cannot honor. Call sites wrap it with
// fmt.Errorf("core: %w: ...", ErrBadInput) so callers separate bad input
// from solver and certification failures with errors.Is.
var ErrBadInput = errors.New("invalid retiming input")
