package core

import (
	"context"
	"fmt"

	"relatch/internal/synth"
)

// ReclaimBySizing implements the observation closing the paper's Section
// VI-D: after retiming, the masters still error-detecting can often be
// reclaimed by *speeding up the combinational logic* — max-delay
// constraints at Π on the offending endpoints plus a size-only
// incremental compile — trading a modest combinational-area increase
// ("on average 5%") for fewer EDL latches and lower error rates,
// "sometimes to 0".
//
// The input result is not modified; the returned result carries a resized
// clone of the circuit, the same slave placement, and the re-settled
// error-detecting set.
func ReclaimBySizing(res *Result, maxIter int) (*Result, synth.CompileResult, error) {
	if res.Placement == nil {
		return nil, synth.CompileResult{}, fmt.Errorf("core: %w: result carries no placement", ErrBadInput)
	}
	c := res.Circuit.Clone()
	opt := res.Options
	tool := synth.New(c, evalOptions(c, opt))
	latch := slaveLatch(c, opt)

	// Constrain every endpoint to the period: the compile pulls in the
	// ones it can and leaves the rest at their best achievable arrival.
	req := make(map[int]float64, len(c.Outputs))
	for _, o := range c.Outputs {
		req[o.ID] = opt.Scheme.Period()
	}
	comp := tool.SizeOnlyCompile(req, res.Placement, opt.Scheme, latch, maxIter)

	out := evaluate(context.Background(), c, opt, res.Approach, res.Placement, latch)
	out.Objective = res.Objective
	out.Classes = res.Classes
	out.Runtime = res.Runtime
	return out, comp, nil
}
