package core

import (
	"context"
	"errors"
	"testing"

	"relatch/internal/fig4"
	"relatch/internal/flow"
)

// TestResultRecordsWinningSolver checks the hardened-solve bookkeeping:
// a default (MethodAuto) run must report the concrete solver that
// produced the accepted, certified solution — never the requested enum.
func TestResultRecordsWinningSolver(t *testing.T) {
	c := fig4.MustCircuit()
	res, err := Retime(c, fig4Options(c), ApproachGRAR)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver == flow.MethodAuto {
		t.Error("result records MethodAuto instead of the winning solver")
	}
	if !res.SolverCertified {
		t.Error("accepted solution not certified")
	}
	if res.SolverFallback {
		t.Errorf("unexpected fallback on a tiny instance: %s", res.FallbackReason)
	}
}

// TestRetimeCtxCancelled checks the retimer surfaces a pre-cancelled
// context instead of solving.
func TestRetimeCtxCancelled(t *testing.T) {
	c := fig4.MustCircuit()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RetimeCtx(ctx, c, fig4Options(c), ApproachGRAR); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to wrap context.Canceled", err)
	}
}
