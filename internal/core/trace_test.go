package core

import (
	"context"
	"testing"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/fig4"
	"relatch/internal/flow"
	"relatch/internal/obs"
)

// TestRetimeTraceTree runs a traced retiming end to end and asserts the
// span tree covers every pipeline stage with its counters.
func TestRetimeTraceTree(t *testing.T) {
	lib := cell.Default(1.0)
	prof, ok := bench.ProfileByName("s1196")
	if !ok {
		t.Fatal("s1196 profile missing")
	}
	c, scheme, err := prof.Build(lib)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.New("test")
	ctx := obs.WithTracer(context.Background(), tr)
	res, err := RetimeCtx(ctx, c, Options{Scheme: scheme, EDLCost: 1.0}, ApproachGRAR)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("traced run did not attach Result.Trace")
	}
	tr.Finish()
	r := res.Trace

	for _, name := range []string{
		"core.retime", "lint.run", "sta.analyze", "rgraph.build",
		"rgraph.solve", "flow.difflp", "flow.solve", "flow.simplex",
		"placement.apply", "core.evaluate", "cert.run",
	} {
		if len(r.Spans(name)) == 0 {
			t.Errorf("span %q missing from trace", name)
		}
	}
	if got := r.Sum("flow.simplex", "pivots"); got <= 0 {
		t.Errorf("pivots = %d, want > 0", got)
	}
	if got := r.Sum("lint.run", "rules_run"); got <= 0 {
		t.Errorf("lint rules_run = %d, want > 0", got)
	}
	if got := r.Sum("cert.run", "checks_run"); got <= 0 {
		t.Errorf("cert checks_run = %d, want > 0", got)
	}
	if res.SolverFallback {
		t.Error("unexpected fallback with the default pivot budget")
	}
	if len(r.Spans("flow.ssp")) != 0 {
		t.Error("flow.ssp span present without a fallback")
	}
}

// TestRetimeTraceFallback drives the simplex→SSP fallback through the
// full retiming stack via Options.PivotLimit and asserts the trace and
// the Result agree on what happened.
func TestRetimeTraceFallback(t *testing.T) {
	lib := cell.Default(1.0)
	prof, ok := bench.ProfileByName("s1196")
	if !ok {
		t.Fatal("s1196 profile missing")
	}
	c, scheme, err := prof.Build(lib)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.New("test")
	ctx := obs.WithTracer(context.Background(), tr)
	opt := Options{Scheme: scheme, EDLCost: 1.0, PivotLimit: 1}
	res, err := RetimeCtx(ctx, c, opt, ApproachGRAR)
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	r := res.Trace

	if !res.SolverFallback || res.Solver != flow.MethodSSP {
		t.Fatalf("solver = %v fallback = %v, want SSP fallback", res.Solver, res.SolverFallback)
	}
	if got := r.Sum("flow.simplex", "pivots"); got <= 0 {
		t.Errorf("pivots = %d, want > 0 (the failed attempt still counts)", got)
	}
	if got := r.Sum("flow.ssp", "augmenting_paths"); got <= 0 {
		t.Errorf("augmenting_paths = %d, want > 0", got)
	}
	if got := r.Sum("flow.solve", "fallbacks"); got != 1 {
		t.Errorf("fallbacks = %d, want 1", got)
	}
	solves := r.Spans("flow.solve")
	if len(solves) == 0 {
		t.Fatal("flow.solve span missing")
	}
	if reason := solves[0].AttrValue("fallback_reason"); reason != res.FallbackReason {
		t.Errorf("trace reason %q != result reason %q", reason, res.FallbackReason)
	}
}

// TestRetimeUntracedHasNilTrace pins the zero-cost contract: without a
// tracer, Result.Trace stays nil and nothing is recorded.
func TestRetimeUntracedHasNilTrace(t *testing.T) {
	c := fig4.MustCircuit()
	res, err := Retime(c, fig4Options(c), ApproachGRAR)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Fatalf("untraced run attached a trace: %+v", res.Trace)
	}
}
