package core

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/exact"
	"relatch/internal/fig4"
	"relatch/internal/flow"
	"relatch/internal/lint"
	"relatch/internal/netlist"
	"relatch/internal/rgraph"
	"relatch/internal/sta"
)

func fig4Options(c *netlist.Circuit) Options {
	return Options{
		Scheme:      fig4.Scheme(),
		EDLCost:     fig4.EDLOverhead,
		TimingModel: sta.ModelFixed,
		FixedDelays: fig4.FixedDelays(c),
	}
}

func TestFig4GRAR(t *testing.T) {
	c := fig4.MustCircuit()
	res, err := Retime(c, fig4Options(c), ApproachGRAR)
	if err != nil {
		t.Fatal(err)
	}
	if res.SlaveCount != 3 {
		t.Errorf("slaves = %d, want 3 (Cut2)", res.SlaveCount)
	}
	if res.EDCount != 0 {
		t.Errorf("ED masters = %d, want 0", res.EDCount)
	}
	if len(res.Violations) != 0 {
		t.Errorf("violations: %v", res.Violations)
	}
	if res.MasterCount != 3 {
		t.Errorf("masters = %d, want 3", res.MasterCount)
	}
	// Sequential area in latch units: 3 slaves + 3 masters + 0 ED.
	a := c.Lib.BaseLatch.Area
	if math.Abs(res.SeqArea-6*a) > 1e-9 {
		t.Errorf("seq area = %g, want %g", res.SeqArea, 6*a)
	}
}

func TestFig4Base(t *testing.T) {
	c := fig4.MustCircuit()
	res, err := Retime(c, fig4Options(c), ApproachBase)
	if err != nil {
		t.Fatal(err)
	}
	if res.SlaveCount != 2 {
		t.Errorf("slaves = %d, want 2 (Cut1)", res.SlaveCount)
	}
	if res.EDCount != 1 {
		t.Errorf("ED masters = %d, want 1 (O9)", res.EDCount)
	}
	o9, _ := c.Node("O9")
	if !res.EDMasters[o9.ID] {
		t.Error("O9 must be the error-detecting master")
	}
}

func TestFig4CostGap(t *testing.T) {
	// The paper's headline for the example: Cut1 costs 5 units, Cut2
	// costs 4 (slaves + target master at c = 2). Our accounting adds the
	// two source masters to both sides, preserving the 1-unit gap.
	c := fig4.MustCircuit()
	grar, err := Retime(c, fig4Options(c), ApproachGRAR)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Retime(c, fig4Options(c), ApproachBase)
	if err != nil {
		t.Fatal(err)
	}
	a := c.Lib.BaseLatch.Area
	gap := (base.SeqArea - grar.SeqArea) / a
	if math.Abs(gap-1) > 1e-9 {
		t.Errorf("seq area gap = %g latch units, want 1 (5 vs 4 in the paper's units)", gap)
	}
}

func TestFig4EvaluateCuts(t *testing.T) {
	c := fig4.MustCircuit()
	opt := fig4Options(c)
	cut1, err := Evaluate(c, opt, fig4.Cut1(c))
	if err != nil {
		t.Fatal(err)
	}
	cut2, err := Evaluate(c, opt, fig4.Cut2(c))
	if err != nil {
		t.Fatal(err)
	}
	if cut1.SlaveCount != 2 || cut1.EDCount != 1 {
		t.Errorf("cut1: slaves=%d ed=%d, want 2/1", cut1.SlaveCount, cut1.EDCount)
	}
	if cut2.SlaveCount != 3 || cut2.EDCount != 0 {
		t.Errorf("cut2: slaves=%d ed=%d, want 3/0", cut2.SlaveCount, cut2.EDCount)
	}
}

func TestEvaluateRejectsIllegalPlacement(t *testing.T) {
	c := fig4.MustCircuit()
	p := netlist.NewPlacement() // no latches anywhere
	if _, err := Evaluate(c, fig4Options(c), p); err == nil {
		t.Error("empty placement accepted")
	}
}

func TestApproachString(t *testing.T) {
	if ApproachGRAR.String() != "g-rar" || ApproachBase.String() != "base" {
		t.Error("approach names wrong")
	}
}

// randomCase builds a random cloud with its scheme and sta options.
func randomCase(t *testing.T, seed int64, gates int) (*netlist.Circuit, Options) {
	t.Helper()
	lib := cell.Default(1.0)
	rng := rand.New(rand.NewSource(seed))
	spec := bench.RandomSpec{
		Inputs:   2 + rng.Intn(3),
		Outputs:  1 + rng.Intn(3),
		Gates:    gates,
		Locality: 3,
	}
	c, err := bench.RandomCloud("rnd", lib, rng, spec)
	if err != nil {
		t.Fatal(err)
	}
	scheme := bench.SchemeFor(c, sta.DefaultOptions(lib))
	return c, Options{Scheme: scheme, EDLCost: 1.0}
}

// TestGRARMatchesExactOracle is the central exactness property: on random
// small circuits the flow-based solve must equal the brute-force optimum
// of the model objective (slaves + c per model-ED master).
func TestGRARMatchesExactOracle(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < 80; seed++ {
		c, opt := randomCase(t, seed, 5+int(seed)%10)
		tm := sta.Analyze(c, sta.DefaultOptions(c.Lib))
		g, err := rgraph.Build(c, tm, rgraph.Config{
			Scheme:         opt.Scheme,
			Latch:          c.Lib.BaseLatch,
			EDLCost:        opt.EDLCost,
			ResilientAware: true,
		})
		if err != nil {
			continue
		}
		best, err := exact.Search(g)
		if err != nil {
			continue // oracle limit exceeded or no legal retiming
		}
		sol, err := g.Solve(flow.MethodSimplex)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := exact.ModelCost(g, sol.R)
		if math.Abs(got-best.Cost) > 1e-9 {
			t.Errorf("seed %d: flow solve cost %g, brute force %g", seed, got, best.Cost)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d/80 random cases checked against the oracle", checked)
	}
}

// TestBaseNotBelowSlaveOracle: base retiming models the commercial
// minimum-perturbation flow, so its slave count can exceed the true
// minimum — but never undercut it (the oracle is a valid lower bound),
// and its placement must stay legal.
func TestBaseNotBelowSlaveOracle(t *testing.T) {
	checked := 0
	for seed := int64(100); seed < 160; seed++ {
		c, opt := randomCase(t, seed, 5+int(seed)%9)
		tm := sta.Analyze(c, sta.DefaultOptions(c.Lib))
		g, err := rgraph.Build(c, tm, rgraph.Config{
			Scheme:         opt.Scheme,
			Latch:          c.Lib.BaseLatch,
			EDLCost:        opt.EDLCost,
			ResilientAware: false,
		})
		if err != nil {
			continue
		}
		best, err := exact.SearchSlaves(g)
		if err != nil {
			continue
		}
		sol, err := g.Solve(flow.MethodSimplex)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := float64(sol.Placement.SlaveCount()); got < best.Cost-1e-9 {
			t.Errorf("seed %d: base slaves %g below the brute-force minimum %g", seed, got, best.Cost)
		}
		if err := sol.Placement.Validate(c); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		checked++
	}
	if checked < 40 {
		t.Fatalf("only %d/60 random cases checked", checked)
	}
}

// TestGRARNeverWorseThanBase asserts the paper's empirical claim on a
// random corpus: the resilient-aware solve never loses to base retiming
// on the model objective, and wins on ground-truth sequential area in
// aggregate.
func TestGRARNeverWorseThanBase(t *testing.T) {
	var grarArea, baseArea float64
	runs := 0
	for seed := int64(200); seed < 240; seed++ {
		c, opt := randomCase(t, seed, 12+int(seed)%25)
		opt.EDLCost = []float64{0.5, 1, 2}[seed%3]
		grar, err := Retime(c, opt, ApproachGRAR)
		if err != nil {
			continue
		}
		base, err := Retime(c, opt, ApproachBase)
		if err != nil {
			continue
		}
		if err := grar.Placement.Validate(c); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(grar.Violations) != 0 {
			t.Errorf("seed %d: G-RAR timing violations %v", seed, grar.Violations)
		}
		grarArea += grar.SeqArea
		baseArea += base.SeqArea
		runs++
	}
	if runs < 30 {
		t.Fatalf("only %d/40 corpus runs completed", runs)
	}
	if grarArea > baseArea*1.0001 {
		t.Errorf("G-RAR aggregate sequential area %g exceeds base %g", grarArea, baseArea)
	}
}

func TestSeqAreaOf(t *testing.T) {
	lib := cell.Default(2.0)
	got := SeqAreaOf(lib, 2.0, 3, 3, 1)
	want := lib.BaseLatch.Area * (6 + 2)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("SeqAreaOf = %g, want %g", got, want)
	}
}

// TestRetimePreflightLint pins the pre-flight gate: a corrupted circuit
// is rejected with positioned lint findings before any solve runs.
func TestRetimePreflightLint(t *testing.T) {
	c := fig4.MustCircuit()
	// Chop a gate's fanin so the width-mismatch rule fires.
	var gate *netlist.Node
	for _, n := range c.Nodes {
		if n.Kind == netlist.KindGate && len(n.Fanin) > 1 {
			gate = n
			break
		}
	}
	if gate == nil {
		t.Fatal("fig4 has no multi-input gate")
	}
	gate.Fanin = gate.Fanin[:1]
	_, err := Retime(c, fig4Options(c), ApproachGRAR)
	if !errors.Is(err, lint.ErrFindings) {
		t.Fatalf("Retime on a corrupted circuit = %v, want lint.ErrFindings", err)
	}
	if !strings.Contains(err.Error(), "width-mismatch") {
		t.Errorf("error does not name the rule: %v", err)
	}
}
