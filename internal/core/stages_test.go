package core

import (
	"math"
	"testing"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/netlist"
	"relatch/internal/sta"
)

// multiComponent builds a circuit whose cloud splits into independent
// stages: two disjoint cones plus one genuinely shared pair.
func multiComponent(t *testing.T) *netlist.Circuit {
	t.Helper()
	lib := cell.Default(1.0)
	b := netlist.NewBuilder("stages", lib)
	// Component 1: a deep chain.
	i1 := b.Input("i1", 0)
	cur := i1
	for k := 0; k < 6; k++ {
		cur = b.Gate(nameK("a", k), lib.MustCell(cell.FuncBuf, 1), cur)
	}
	b.Output("o1", 1, cur)
	// Component 2: two inputs sharing logic into two outputs.
	i2 := b.Input("i2", 2)
	i3 := b.Input("i3", 3)
	g := b.Gate("b0", lib.MustCell(cell.FuncNand2, 1), i2, i3)
	h1 := b.Gate("b1", lib.MustCell(cell.FuncInv, 1), g)
	h2 := b.Gate("b2", lib.MustCell(cell.FuncXor2, 1), g, i3)
	b.Output("o2", 4, h1)
	b.Output("o3", 5, h2)
	// Component 3: a trivial wire stage.
	i4 := b.Input("i4", 6)
	w := b.Gate("c0", lib.MustCell(cell.FuncInv, 1), i4)
	b.Output("o4", 7, w)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func nameK(p string, k int) string { return p + string(rune('0'+k)) }

func TestComponents(t *testing.T) {
	c := multiComponent(t)
	comps := Components(c)
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	total := 0
	for _, ids := range comps {
		total += len(ids)
	}
	if total != len(c.Nodes) {
		t.Errorf("components cover %d of %d nodes", total, len(c.Nodes))
	}
}

// TestComponentSolveMatchesWholeCircuit: the paper's per-stage
// independence claim — the decomposed solve reaches the same sequential
// cost as the monolithic one.
func TestComponentSolveMatchesWholeCircuit(t *testing.T) {
	lib := cell.Default(1.0)
	circuits := []*netlist.Circuit{multiComponent(t)}
	for _, name := range []string{"s1196", "s1423"} {
		p, _ := bench.ProfileByName(name)
		c, _, err := p.Build(lib)
		if err != nil {
			t.Fatal(err)
		}
		circuits = append(circuits, c)
	}
	for _, c := range circuits {
		scheme := bench.SchemeFor(c, sta.DefaultOptions(c.Lib))
		for _, approach := range []Approach{ApproachGRAR, ApproachBase} {
			opt := Options{Scheme: scheme, EDLCost: 1}
			whole, err := Retime(c, opt, approach)
			if err != nil {
				t.Fatalf("%s %v: %v", c.Name, approach, err)
			}
			split, err := RetimeByComponents(c, opt, approach)
			if err != nil {
				t.Fatalf("%s %v: %v", c.Name, approach, err)
			}
			if math.Abs(whole.SeqArea-split.SeqArea) > 1e-9 {
				t.Errorf("%s %v: whole %.4f vs per-component %.4f sequential area",
					c.Name, approach, whole.SeqArea, split.SeqArea)
			}
			if whole.EDCount != split.EDCount || whole.SlaveCount != split.SlaveCount {
				t.Errorf("%s %v: counts differ: whole %d/%d vs split %d/%d (slaves/EDL)",
					c.Name, approach, whole.SlaveCount, whole.EDCount, split.SlaveCount, split.EDCount)
			}
		}
	}
}

func TestRetimeByComponentsRejectsFixedDelays(t *testing.T) {
	c := multiComponent(t)
	opt := Options{Scheme: bench.SchemeFor(c, sta.DefaultOptions(c.Lib)), EDLCost: 1,
		FixedDelays: map[int]float64{0: 1}}
	if _, err := RetimeByComponents(c, opt, ApproachGRAR); err == nil {
		t.Error("fixed delays should be rejected")
	}
}
