package core

import (
	"testing"

	"relatch/internal/bench"
	"relatch/internal/cell"
)

// TestReclaimBySizing reproduces the closing observation of Section VI-D:
// speeding up the combinational logic with a size-only compile reclaims
// error-detecting masters that retiming alone could not, at a modest
// combinational-area cost.
func TestReclaimBySizing(t *testing.T) {
	lib := cell.Default(1.0)
	// s1196 carries stuck endpoints (combinational paths past Π), the
	// case only sizing can fix.
	prof, _ := bench.ProfileByName("s1196")
	c, scheme, err := prof.Build(lib)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Retime(c, Options{Scheme: scheme, EDLCost: 1}, ApproachGRAR)
	if err != nil {
		t.Fatal(err)
	}
	if res.EDCount == 0 {
		t.Skip("no error-detecting masters left to reclaim")
	}
	reclaimed, comp, err := ReclaimBySizing(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed.EDCount > res.EDCount {
		t.Errorf("sizing increased EDL: %d -> %d", res.EDCount, reclaimed.EDCount)
	}
	if comp.Upsized > 0 && reclaimed.Circuit.CombArea() <= res.Circuit.CombArea() {
		t.Error("upsizing must grow combinational area")
	}
	// The original result must be untouched (clone semantics).
	if res.Circuit.CombArea() != c.CombArea() {
		t.Error("reclaim mutated the input circuit")
	}
	if reclaimed.EDCount < res.EDCount {
		t.Logf("reclaimed %d of %d EDL masters for +%.1f%% combinational area",
			res.EDCount-reclaimed.EDCount, res.EDCount,
			100*(reclaimed.Circuit.CombArea()-c.CombArea())/c.CombArea())
	}
	// Placement unchanged and still legal on the resized circuit.
	if err := reclaimed.Placement.Validate(reclaimed.Circuit); err != nil {
		t.Fatal(err)
	}
}

// TestReclaimNoOpWhenClean: on a circuit G-RAR already cleared, the
// reclaim pass must change nothing.
func TestReclaimNoOpWhenClean(t *testing.T) {
	lib := cell.Default(1.0)
	prof, _ := bench.ProfileByName("s15850")
	c, scheme, err := prof.Build(lib)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Retime(c, Options{Scheme: scheme, EDLCost: 2}, ApproachGRAR)
	if err != nil {
		t.Fatal(err)
	}
	reclaimed, comp, err := ReclaimBySizing(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed.EDCount > res.EDCount {
		t.Errorf("EDL grew: %d -> %d", res.EDCount, reclaimed.EDCount)
	}
	if res.EDCount <= 1 && comp.Upsized > res.Circuit.GateCount()/10 {
		t.Errorf("near-clean circuit should need few upsizes, got %d", comp.Upsized)
	}
}
