package core

import (
	"fmt"

	"relatch/internal/clocking"
	"relatch/internal/netlist"
	"relatch/internal/sta"
)

// MinPeriodResult is the outcome of a minimum-period search.
type MinPeriodResult struct {
	// P is the smallest feasible stage-delay budget found; Scheme is the
	// symmetric two-phase clocking derived from it (period Π = 0.7·P).
	P      float64
	Scheme clocking.Scheme
	// Result is the retiming at that budget.
	Result *Result
	// Iterations counts the binary-search probes.
	Iterations int
}

// MinPeriod finds, by binary search, the smallest stage-delay budget P
// for which the two-phase design has a legal slave-latch retiming under
// the paper's symmetric clocking, and returns the retiming at that
// budget. This is the period-minimization counterpart (Section II-C
// cites [21], [22]) to the min-area objective the rest of the package
// optimizes: area-driven flows run at a fixed clock, but the machinery —
// regions, per-edge legality, the flow solve — doubles as an exact
// feasibility oracle over P.
//
// edlCost and approach choose the objective used at each probe (the
// feasibility frontier is identical for both approaches; the returned
// placement differs). tol is the relative termination tolerance (0 picks
// 1%).
func MinPeriod(c *netlist.Circuit, edlCost float64, approach Approach, tol float64) (*MinPeriodResult, error) {
	if tol <= 0 {
		tol = 0.01
	}
	tm := sta.Analyze(c, sta.DefaultOptions(c.Lib))
	worst := 0.0
	for _, o := range c.Outputs {
		if a := tm.Arrival(o); a > worst {
			worst = a
		}
	}
	if worst <= 0 {
		return nil, fmt.Errorf("core: %w: circuit has no combinational delay", ErrBadInput)
	}

	solveAt := func(p float64) (*Result, error) {
		opt := Options{Scheme: clocking.Symmetric(p), EDLCost: edlCost}
		return Retime(c, opt, approach)
	}

	// The pure combinational delay lower-bounds P; search upward for a
	// feasible ceiling first (single very deep gates can push the
	// frontier beyond the usual ~1.1×worst).
	lo, hi := worst, 1.5*worst
	res, err := solveAt(hi)
	iters := 1
	for ; err != nil && iters < 10; iters++ {
		hi *= 1.5
		res, err = solveAt(hi)
	}
	if err != nil {
		return nil, fmt.Errorf("core: no feasible period up to %.4g: %w", hi, err)
	}
	for hi-lo > tol*hi {
		mid := (lo + hi) / 2
		r, err := solveAt(mid)
		iters++
		if err != nil {
			lo = mid
			continue
		}
		hi = mid
		res = r
	}
	return &MinPeriodResult{
		P:          hi,
		Scheme:     clocking.Symmetric(hi),
		Result:     res,
		Iterations: iters,
	}, nil
}
