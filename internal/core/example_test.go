package core_test

import (
	"fmt"

	"relatch/internal/core"
	"relatch/internal/fig4"
	"relatch/internal/sta"
)

// Retiming the paper's worked example (Fig. 4): base retiming finds the
// 2-latch cut and leaves O9 error-detecting (the paper's Cut1, 5 cost
// units); G-RAR pays one more slave latch to clear the error detection
// (Cut2, 4 units).
func ExampleRetime() {
	c := fig4.MustCircuit()
	opt := core.Options{
		Scheme:      fig4.Scheme(),
		EDLCost:     fig4.EDLOverhead,
		TimingModel: sta.ModelFixed,
		FixedDelays: fig4.FixedDelays(c),
	}
	for _, approach := range []core.Approach{core.ApproachBase, core.ApproachGRAR} {
		res, err := core.Retime(c, opt, approach)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d slaves, %d error-detecting\n", approach, res.SlaveCount, res.EDCount)
	}
	// Output:
	// base: 2 slaves, 1 error-detecting
	// g-rar: 3 slaves, 0 error-detecting
}
