package bench

import (
	"fmt"
	"math/rand"
	"sort"

	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/netlist"
	"relatch/internal/sta"
)

// Profile describes one benchmark of Table I. The ISCAS89 originals are
// not redistributable inside this offline repository, so each profile
// drives a deterministic layered generator that matches the statistics
// the experiments depend on: the boundary register count (Table I's
// flop#, which counts state flops plus registered primary inputs), the
// near-critical endpoint count (NCE#), the post-synthesis cell count
// (the paper's areas imply roughly 30%% of the raw ISCAS89 gate counts —
// commercial synthesis at a relaxed period compresses these netlists
// heavily, leaving the sequential cells dominating total area), and the
// logic-depth shape. Real netlists parsed through the verilog package
// can be substituted one-for-one.
type Profile struct {
	Name string
	// Flops is the boundary register count of Table I.
	Flops int
	// PIRegs of those are registered primary inputs (no D-side in the
	// cloud); PORegs are additional registered primary outputs.
	PIRegs int
	PORegs int
	// NCE is the target near-critical endpoint count of Table I: the
	// masters that are error-detecting with the slave latches at their
	// initial positions (see MeasureInitialED).
	NCE int
	// Stuck is how many of those endpoints have combinational arrivals
	// past Pi itself, so no retiming can reclaim them (the G-RAR EDL
	// floor of Table VI; zero for the large circuits).
	Stuck int
	// Gates approximates the original circuit's combinational size.
	Gates int
	// PaperP and PaperArea record Table I's P (ns) and flop-design area
	// for reporting alongside measured values.
	PaperP    float64
	PaperArea float64
	// PaperRuntime is Table I's synthesis runtime in seconds.
	PaperRuntime float64
	Seed         int64
	// Plasma switches to the structural CPU generator.
	Plasma bool
}

// ISCAS89 lists the twelve benchmarks of Table I.
var ISCAS89 = []Profile{
	{Name: "s1196", Flops: 32, PIRegs: 14, PORegs: 14, NCE: 6, Stuck: 4, Gates: 180, PaperP: 0.4, PaperArea: 376.18, PaperRuntime: 161, Seed: 1196},
	{Name: "s1238", Flops: 32, PIRegs: 14, PORegs: 14, NCE: 4, Stuck: 3, Gates: 170, PaperP: 0.5, PaperArea: 334.89, PaperRuntime: 160, Seed: 1238},
	{Name: "s1423", Flops: 91, PIRegs: 17, PORegs: 5, NCE: 54, Stuck: 3, Gates: 230, PaperP: 0.6, PaperArea: 559.9, PaperRuntime: 161, Seed: 1423},
	{Name: "s1488", Flops: 14, PIRegs: 8, PORegs: 19, NCE: 6, Stuck: 6, Gates: 210, PaperP: 0.4, PaperArea: 264.38, PaperRuntime: 171, Seed: 1488},
	{Name: "s5378", Flops: 198, PIRegs: 35, PORegs: 49, NCE: 55, Stuck: 2, Gates: 860, PaperP: 0.5, PaperArea: 1149.42, PaperRuntime: 166, Seed: 5378},
	{Name: "s9234", Flops: 160, PIRegs: 36, PORegs: 39, NCE: 61, Stuck: 3, Gates: 950, PaperP: 0.5, PaperArea: 893.36, PaperRuntime: 168, Seed: 9234},
	{Name: "s13207", Flops: 502, PIRegs: 62, PORegs: 152, NCE: 188, Stuck: 6, Gates: 1600, PaperP: 0.5, PaperArea: 2670.28, PaperRuntime: 179, Seed: 13207},
	{Name: "s15850", Flops: 524, PIRegs: 77, PORegs: 150, NCE: 174, Gates: 1950, PaperP: 0.8, PaperArea: 2980.52, PaperRuntime: 178, Seed: 15850},
	{Name: "s35932", Flops: 1763, PIRegs: 35, PORegs: 320, NCE: 288, Gates: 3900, PaperP: 1.0, PaperArea: 9681.35, PaperRuntime: 222, Seed: 35932},
	{Name: "s38417", Flops: 1494, PIRegs: 28, PORegs: 106, NCE: 213, Gates: 3500, PaperP: 1.0, PaperArea: 8635.73, PaperRuntime: 224, Seed: 38417},
	{Name: "s38584", Flops: 1271, PIRegs: 38, PORegs: 304, NCE: 632, Gates: 3600, PaperP: 0.7, PaperArea: 8100.11, PaperRuntime: 220, Seed: 38584},
	{Name: "Plasma", Flops: 1652, PIRegs: 34, PORegs: 64, NCE: 217, Gates: 9300, PaperP: 2.1, PaperArea: 10371.2, PaperRuntime: 208, Seed: 777, Plasma: true},
}

// ProfileByName looks a profile up by benchmark name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range ISCAS89 {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// BuildSeq generates the flip-flop based benchmark (the form retiming
// starts from, and the one the movable-master experiment of Table IX
// reshapes before cutting).
func (p Profile) BuildSeq(lib *cell.Library) (*netlist.SeqCircuit, error) {
	if p.Plasma {
		return BuildPlasma(lib, p)
	}
	return p.buildLayered(lib)
}

// Build generates the benchmark's cut two-phase circuit and its clocking.
// The scheme follows Section VI-A: symmetric two-phase clocks derived
// from the stage-delay budget P, with P calibrated so that the
// near-critical endpoint count matches the profile.
func (p Profile) Build(lib *cell.Library) (*netlist.Circuit, clocking.Scheme, error) {
	sc, err := p.BuildSeq(lib)
	if err != nil {
		return nil, clocking.Scheme{}, err
	}
	c, err := sc.Cut()
	if err != nil {
		return nil, clocking.Scheme{}, err
	}
	scheme := p.calibrate(c)
	return c, scheme, nil
}

// CutAndCalibrate converts an (possibly retimed) flip-flop design into
// its two-phase form with a profile-calibrated clocking.
func (p Profile) CutAndCalibrate(sc *netlist.SeqCircuit) (*netlist.Circuit, clocking.Scheme, error) {
	c, err := sc.Cut()
	if err != nil {
		return nil, clocking.Scheme{}, err
	}
	return c, p.calibrate(c), nil
}

// Cone shaping parameters: chain lengths (in gates) for the three
// endpoint classes. Stuck endpoints ride the longest trunks (arrivals
// past Π), near-critical reclaimable endpoints ride deep trunks (dirty at
// the initial latch positions, clean once retimed), and the rest use
// short private cones. Several endpoints tap one trunk, mirroring how
// synthesized netlists share logic between related register bits.
const (
	deepChainLen    = 12
	stuckChainExtra = 5
	tapsPerTrunk    = 8
)

// buildLayered emits a cone-structured flip-flop design matching the
// profile: every endpoint owns (or shares) a backward cone rooted in the
// boundary registers, with no global narrow waist — the min-latch cut
// stays at the registers, as it does in the synthesized netlists the
// paper retimes, so base retiming keeps its latches near the registers
// and its error-detection high while G-RAR pays only where reclaiming is
// worth it.
func (p Profile) buildLayered(lib *cell.Library) (*netlist.SeqCircuit, error) {
	if p.Flops <= p.PIRegs {
		return nil, fmt.Errorf("bench: %s: flops %d must exceed registered PIs %d", p.Name, p.Flops, p.PIRegs)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	b := netlist.NewSeqBuilder(p.Name, lib).AutoPos("bench://" + p.Name)

	nFF := p.Flops - p.PIRegs
	nOut := nFF + p.PORegs
	var ffs []*netlist.SeqNode
	var inputs []*netlist.SeqNode
	for i := 0; i < nFF; i++ {
		ff := b.FF(fmt.Sprintf("ff%d", i))
		ffs = append(ffs, ff)
		inputs = append(inputs, ff)
	}
	for i := 0; i < p.PIRegs; i++ {
		inputs = append(inputs, b.PI(fmt.Sprintf("pi%d", i)))
	}
	unusedInputs := append([]*netlist.SeqNode(nil), inputs...)

	// sidePool holds shallow nodes usable as secondary pins without
	// deepening a cone: inputs plus gates within the first few chain
	// positions.
	sidePool := append([]*netlist.SeqNode(nil), inputs...)
	gateID := 0
	newGate := func(depth int, pin0 *netlist.SeqNode) *netlist.SeqNode {
		f := randomFuncs[rng.Intn(len(randomFuncs))]
		drive := []int{1, 1, 2, 4}[rng.Intn(4)]
		fanin := make([]*netlist.SeqNode, f.Arity())
		fanin[0] = pin0
		for pin := 1; pin < len(fanin); pin++ {
			if len(unusedInputs) > 0 {
				fanin[pin] = unusedInputs[len(unusedInputs)-1]
				unusedInputs = unusedInputs[:len(unusedInputs)-1]
				continue
			}
			fanin[pin] = sidePool[rng.Intn(len(sidePool))]
		}
		g := b.Gate(fmt.Sprintf("g%d", gateID), lib.MustCell(f, drive), fanin...)
		gateID++
		if depth <= 3 {
			sidePool = append(sidePool, g)
		}
		return g
	}
	chain := func(length int, leaf *netlist.SeqNode) *netlist.SeqNode {
		cur := leaf
		for j := 0; j < length; j++ {
			cur = newGate(j+1, cur)
		}
		return cur
	}

	// Class sizes and gate budget split.
	stuckN := p.Stuck
	deepN := p.NCE - stuckN
	if deepN < 0 {
		deepN = 0
	}
	shallowN := nOut - stuckN - deepN
	stuckLen := deepChainLen + stuckChainExtra + rng.Intn(3)
	deepTrunks := (deepN + tapsPerTrunk - 1) / tapsPerTrunk
	stuckTrunks := (stuckN + tapsPerTrunk - 1) / tapsPerTrunk
	trunkGates := (deepTrunks)*(deepChainLen+rng.Intn(3)) + stuckTrunks*stuckLen
	shallowBudget := p.Gates - trunkGates
	if shallowBudget < shallowN {
		shallowBudget = shallowN
	}

	// Deep and stuck trunks, each tapped by several endpoints near its
	// end (the taps share the trunk's timing class).
	buildTrunks := func(count, length int) []*netlist.SeqNode {
		var drivers []*netlist.SeqNode
		for i := 0; i < count; i++ {
			leaf := inputs[rng.Intn(len(inputs))]
			end := chain(length, leaf)
			drivers = append(drivers, end)
		}
		return drivers
	}
	deepDrv := buildTrunks(deepTrunks, deepChainLen+rng.Intn(2))
	stuckDrv := buildTrunks(stuckTrunks, stuckLen)

	// Shallow cones: short private chains; lengths spread the budget.
	var shallowDrv []*netlist.SeqNode
	for i := 0; i < shallowN; i++ {
		length := shallowBudget / max(shallowN, 1)
		if length < 1 {
			length = 1
		}
		if length > 4 {
			length = 1 + rng.Intn(4)
		} else {
			length = 1 + rng.Intn(length)
		}
		leaf := inputs[rng.Intn(len(inputs))]
		shallowDrv = append(shallowDrv, chain(length, leaf))
	}
	// Spend any remaining budget on extra shallow logic feeding the
	// side pool (shared decode-style clusters).
	for gateID < p.Gates {
		newGate(1+rng.Intn(3), inputs[rng.Intn(len(inputs))])
	}
	// Sweep any still-unused inputs into fresh shallow gates.
	for len(unusedInputs) > 0 {
		leaf := unusedInputs[len(unusedInputs)-1]
		unusedInputs = unusedInputs[:len(unusedInputs)-1]
		g := newGate(1, leaf)
		if len(shallowDrv) > 0 {
			shallowDrv[rng.Intn(len(shallowDrv))] = g
		}
	}

	// Endpoint wiring: spread the near-critical endpoints across the
	// index space, stuck first, like Table I's NCE distribution.
	deepEvery := nOut
	if p.NCE > 0 {
		deepEvery = nOut / p.NCE
		if deepEvery < 1 {
			deepEvery = 1
		}
	}
	deepCount, shallowCount := 0, 0
	for i := 0; i < nOut; i++ {
		deep := p.NCE > 0 && i%deepEvery == 0 && deepCount < p.NCE
		var drv *netlist.SeqNode
		switch {
		case deep && deepCount < stuckN:
			drv = stuckDrv[deepCount%max(len(stuckDrv), 1)]
			deepCount++
		case deep:
			k := deepCount - stuckN
			drv = deepDrv[(k/tapsPerTrunk)%max(len(deepDrv), 1)]
			deepCount++
		default:
			drv = shallowDrv[shallowCount%max(len(shallowDrv), 1)]
			shallowCount++
		}
		if i < nFF {
			b.SetD(ffs[i], drv)
		} else {
			b.PO(fmt.Sprintf("po%d", i-nFF), drv)
		}
	}
	return b.Build()
}

// calibrate picks the stage budget P the way the paper's flow sets its
// max-delay constraint ("so that the initial number of near-critical
// end-points is reasonable"): the synthesized logic meets P with slack —
// the worst combinational path sits at or just past Π = 0.7P — so that
// retiming can reclaim most of the initially-error-detecting masters
// (this is what lets G-RAR drive the EDL count of Table VI to zero on
// the large circuits). With a Stuck target, Π is threaded between the
// Stuck-th and (Stuck+1)-th worst arrivals so exactly those endpoints
// stay error-detecting under any retiming; otherwise Π clears every
// path. The NCE count then follows from the generator's tap bands: an
// initial latch position is late exactly when the endpoint's backward
// delay exceeds Π − φ1 = 0.4P.
func (p Profile) calibrate(c *netlist.Circuit) clocking.Scheme {
	tm := sta.Analyze(c, sta.DefaultOptions(c.Lib))
	arrs := make([]float64, 0, len(c.Outputs))
	for _, o := range c.Outputs {
		arrs = append(arrs, tm.Arrival(o))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(arrs)))
	worst := arrs[0]
	var pBudget float64
	if p.Stuck > 0 && p.Stuck < len(arrs) {
		pBudget = (arrs[p.Stuck-1] + arrs[p.Stuck]) / 2 / 0.7
	} else {
		pBudget = 1.03 * worst / 0.7
	}
	if minP := worst + 2*c.Lib.BaseLatch.DToQ; pBudget < minP {
		pBudget = minP
	}
	return clocking.Symmetric(pBudget)
}

// MeasureInitialED counts the masters that are error-detecting with the
// slave latches at their initial positions — the paper's NCE column.
func MeasureInitialED(c *netlist.Circuit, s clocking.Scheme) int {
	tm := sta.Analyze(c, sta.DefaultOptions(c.Lib))
	la := sta.AnalyzeLatched(tm, netlist.InitialPlacement(c), s, c.Lib.BaseLatch)
	return len(la.EDMasters())
}

// MeasureNCE counts endpoints past the period, Table I's NCE column.
func MeasureNCE(c *netlist.Circuit, s clocking.Scheme) int {
	tm := sta.Analyze(c, sta.DefaultOptions(c.Lib))
	return len(tm.NearCritical(s))
}
