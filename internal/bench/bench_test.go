package bench

import (
	"math/rand"
	"testing"

	"relatch/internal/cell"
	"relatch/internal/netlist"
	"relatch/internal/sta"
)

func TestRandomCloudDeterministic(t *testing.T) {
	lib := cell.Default(1.0)
	spec := RandomSpec{Inputs: 3, Outputs: 2, Gates: 15, Locality: 3}
	a, err := RandomCloud("x", lib, rand.New(rand.NewSource(5)), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomCloud("x", lib, rand.New(rand.NewSource(5)), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("same seed, different node count")
	}
	for i := range a.Nodes {
		if a.Nodes[i].Name != b.Nodes[i].Name || len(a.Nodes[i].Fanin) != len(b.Nodes[i].Fanin) {
			t.Fatal("same seed, different structure")
		}
	}
}

func TestRandomCloudRejectsBadSpec(t *testing.T) {
	lib := cell.Default(1.0)
	_, err := RandomCloud("bad", lib, rand.New(rand.NewSource(1)), RandomSpec{})
	if err == nil {
		t.Error("empty spec accepted")
	}
}

func TestProfileTable(t *testing.T) {
	if len(ISCAS89) != 12 {
		t.Fatalf("profiles = %d, want 12 (11 ISCAS89 + Plasma)", len(ISCAS89))
	}
	if _, ok := ProfileByName("s1196"); !ok {
		t.Error("s1196 missing")
	}
	if _, ok := ProfileByName("nothing"); ok {
		t.Error("bogus profile found")
	}
	p, _ := ProfileByName("Plasma")
	if !p.Plasma {
		t.Error("Plasma profile must use the CPU generator")
	}
}

func TestSmallProfilesBuild(t *testing.T) {
	lib := cell.Default(1.0)
	for _, name := range []string{"s1196", "s1238", "s1423", "s1488"} {
		p, ok := ProfileByName(name)
		if !ok {
			t.Fatalf("profile %s missing", name)
		}
		c, scheme, err := p.Build(lib)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := scheme.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Boundary register accounting: profile flops plus PO registers.
		if got, want := c.FlopCount(), p.Flops+p.PORegs; got != want {
			t.Errorf("%s: FlopCount = %d, want %d", name, got, want)
		}
		if got := len(c.Inputs); got != p.Flops {
			t.Errorf("%s: inputs = %d, want flop count %d", name, got, p.Flops)
		}
		if got := c.GateCount(); got < p.Gates*9/10 || got > p.Gates*11/10 {
			t.Errorf("%s: gates = %d, want about %d", name, got, p.Gates)
		}
		// NCE calibration within a reasonable band of Table I.
		nce := MeasureInitialED(c, scheme)
		if nce < p.NCE/2 || nce > p.NCE*3+4 {
			t.Errorf("%s: initial-ED NCE = %d, want near %d", name, nce, p.NCE)
		}
		// Stuck endpoints (combinational arrivals past Π) match exactly:
		// calibration threads Π between the designated arrivals.
		if stuck := MeasureNCE(c, scheme); stuck < p.Stuck-2 || stuck > p.Stuck+2 {
			t.Errorf("%s: stuck endpoints = %d, want %d", name, stuck, p.Stuck)
		}
		// The worst path must fit the stage budget.
		tm := sta.Analyze(c, sta.DefaultOptions(lib))
		for _, o := range c.Outputs {
			if tm.Arrival(o) > scheme.MaxStageDelay() {
				t.Errorf("%s: endpoint %s misses the stage budget", name, o.Name)
			}
		}
		// Every boundary register's Q must drive logic.
		for _, in := range c.Inputs {
			if len(in.Fanout) == 0 {
				t.Errorf("%s: dangling input %s", name, in.Name)
			}
		}
	}
}

func TestProfilesDeterministic(t *testing.T) {
	lib := cell.Default(1.0)
	p, _ := ProfileByName("s1423")
	a, _, err := p.Build(lib)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := p.Build(lib)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("profile build is not deterministic")
	}
	for i := range a.Nodes {
		if a.Nodes[i].Name != b.Nodes[i].Name {
			t.Fatal("profile build is not deterministic")
		}
	}
}

func TestPlasmaBuilds(t *testing.T) {
	lib := cell.Default(1.0)
	p, _ := ProfileByName("Plasma")
	c, scheme, err := p.Build(lib)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := c.FlopCount(), p.Flops+p.PORegs; got != want {
		t.Errorf("FlopCount = %d, want %d", got, want)
	}
	if got := len(c.Inputs); got != p.Flops {
		t.Errorf("inputs = %d, want %d", got, p.Flops)
	}
	if c.GateCount() < 6000 {
		t.Errorf("gate count = %d; the CPU should be thousands of gates", c.GateCount())
	}
	// Spot-check register wiring.
	if n, ok := c.Node("r7[13]/Q"); !ok || n.Kind != netlist.KindInput {
		t.Error("r7[13]/Q missing")
	}
	if n, ok := c.Node("pc[0]/Q"); !ok || n.Kind != netlist.KindInput {
		t.Error("pc[0]/Q missing")
	}
	if n, ok := c.Node("pc[0]/D"); !ok || n.Kind != netlist.KindOutput {
		t.Error("pc[0]/D missing")
	}
	// PC bit 0 Q and D share a flop index (feedback).
	nq, _ := c.Node("pc[0]/Q")
	nd, _ := c.Node("pc[0]/D")
	if nq.Flop != nd.Flop {
		t.Error("pc[0] Q/D flop indices differ")
	}
	// Depth must be dominated by the ripple carry chain.
	if d := c.LogicDepth(); d < 40 {
		t.Errorf("logic depth = %d; expected a deep ripple-carry chain", d)
	}
	tm := sta.Analyze(c, sta.DefaultOptions(lib))
	for _, o := range c.Outputs {
		if tm.Arrival(o) > scheme.MaxStageDelay() {
			t.Errorf("endpoint %s misses the stage budget", o.Name)
		}
	}
	// Every input drives logic (no dangling state bits).
	for _, in := range c.Inputs {
		if len(in.Fanout) == 0 {
			t.Errorf("dangling input %s", in.Name)
		}
	}
}

func TestSchemeForPositive(t *testing.T) {
	lib := cell.Default(1.0)
	c, err := RandomCloud("s", lib, rand.New(rand.NewSource(3)), RandomSpec{Inputs: 2, Outputs: 1, Gates: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := SchemeFor(c, sta.DefaultOptions(lib))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Period() <= 0 {
		t.Error("degenerate scheme")
	}
}
