// Package bench generates the benchmark circuits of the paper's
// evaluation: deterministic synthetic stand-ins for the ISCAS89 suite
// (profiles matching Table I), a gate-level 3-stage MIPS-like CPU
// standing in for Plasma, and random clouds for property tests. Real
// netlists can be substituted through the verilog package when available;
// the generators keep every experiment self-contained and offline.
package bench

import (
	"fmt"
	"math/rand"

	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/netlist"
	"relatch/internal/sta"
)

// RandomSpec shapes a random cut cloud.
type RandomSpec struct {
	Inputs  int
	Outputs int
	Gates   int
	// Locality biases fanin selection toward recent nodes, deepening
	// the logic; 0 picks uniformly (shallow), larger values deepen.
	Locality int
}

// randomFuncs lists the functions the generator draws from, weighted
// toward the 1- and 2-input cells that dominate real netlists.
var randomFuncs = []cell.Function{
	cell.FuncInv, cell.FuncInv, cell.FuncBuf,
	cell.FuncNand2, cell.FuncNand2, cell.FuncNor2, cell.FuncAnd2,
	cell.FuncOr2, cell.FuncXor2, cell.FuncXnor2,
	cell.FuncNand3, cell.FuncNor3, cell.FuncAoi21, cell.FuncOai21,
	cell.FuncMux2, cell.FuncNand4,
}

// RandomCloud builds a random DAG cloud with the given shape. The same
// seed always yields the same circuit.
func RandomCloud(name string, lib *cell.Library, rng *rand.Rand, spec RandomSpec) (*netlist.Circuit, error) {
	if spec.Inputs < 1 || spec.Outputs < 1 || spec.Gates < 1 {
		return nil, fmt.Errorf("bench: spec needs at least one input, output and gate")
	}
	b := netlist.NewBuilder(name, lib)
	var pool []*netlist.Node
	flop := 0
	for i := 0; i < spec.Inputs; i++ {
		pool = append(pool, b.Input(fmt.Sprintf("i%d", i), flop))
		flop++
	}
	pick := func() *netlist.Node {
		if spec.Locality <= 0 || len(pool) <= spec.Locality {
			return pool[rng.Intn(len(pool))]
		}
		// Prefer the tail of the pool to stretch paths.
		if rng.Intn(3) > 0 {
			return pool[len(pool)-1-rng.Intn(spec.Locality)]
		}
		return pool[rng.Intn(len(pool))]
	}
	for i := 0; i < spec.Gates; i++ {
		f := randomFuncs[rng.Intn(len(randomFuncs))]
		drive := []int{1, 1, 2, 4}[rng.Intn(4)]
		fanin := make([]*netlist.Node, f.Arity())
		for p := range fanin {
			fanin[p] = pick()
		}
		g := b.Gate(fmt.Sprintf("%s_g%d", name, i), lib.MustCell(f, drive), fanin...)
		pool = append(pool, g)
	}
	// Outputs prefer late gates so the cloud has sinks at full depth.
	for i := 0; i < spec.Outputs; i++ {
		var drv *netlist.Node
		for tries := 0; ; tries++ {
			drv = pool[len(pool)-1-rng.Intn(min(len(pool), spec.Gates))]
			if drv.Kind == netlist.KindGate || tries > 8 {
				break
			}
		}
		b.Output(fmt.Sprintf("o%d", i), flop, drv)
		flop++
	}
	return b.Build()
}

// SchemeFor derives a two-phase clocking for a circuit: the paper's
// symmetric scheme with the stage delay budget P set a little above the
// worst path arrival so the design meets P = Π + φ1 with margin for the
// slave latch insertion delays.
func SchemeFor(c *netlist.Circuit, opt sta.Options) clocking.Scheme {
	t := sta.Analyze(c, opt)
	worst := 0.0
	for _, o := range c.Outputs {
		if a := t.Arrival(o); a > worst {
			worst = a
		}
	}
	if worst <= 0 {
		worst = 1
	}
	margin := 1.12*worst + 6*(c.Lib.BaseLatch.DToQ+c.Lib.BaseLatch.ClkToQ)
	return clocking.Symmetric(margin)
}
