package bench

import (
	"fmt"

	"relatch/internal/cell"
	"relatch/internal/netlist"
)

// BuildPlasma generates the gate-level 3-stage MIPS-like CPU standing in
// for the Plasma open core of the paper's evaluation: a 32-entry × 32-bit
// register file with two read ports and one write port, a ripple-carry
// adder/subtractor ALU with logic ops, set-less-than and a 5-stage
// barrel shifter, PC/branch logic, an instruction-fetch stage fed by a
// combinational instruction-memory surrogate, and pipeline/CSR registers
// padding the state up to the profile's flop count. All state appears as
// master-latch boundary pairs (cut-cloud form), so the CPU drops into the
// same retiming flows as every other benchmark.
func BuildPlasma(lib *cell.Library, p Profile) (*netlist.SeqCircuit, error) {
	if p.PIRegs < 1 {
		return nil, fmt.Errorf("bench: profile %s needs at least one primary input (PIRegs = %d)", p.Name, p.PIRegs)
	}
	// Validate the caller-supplied library up front: every cell the word
	// builder picks must exist at drive 1, so the MustCell calls below are
	// provably safe after this check.
	for _, f := range []cell.Function{
		cell.FuncInv, cell.FuncBuf, cell.FuncAnd2, cell.FuncOr2,
		cell.FuncXor2, cell.FuncMux2, cell.FuncNor2,
	} {
		if _, err := lib.Cell(f, 1); err != nil {
			return nil, fmt.Errorf("bench: profile %s: %w", p.Name, err)
		}
	}
	w := &wordBuilder{
		b:   netlist.NewSeqBuilder(p.Name, lib).AutoPos("bench://" + p.Name),
		lib: lib,
	}

	// --- State registers (Q sides first; D sides connected at the end).
	pc := w.register("pc", 32)
	ir := w.register("ir", 32)
	regfile := make([]reg, 32)
	for i := range regfile {
		regfile[i] = w.register(fmt.Sprintf("r%d", i), 32)
	}
	wbReg := w.register("wb", 32) // writeback data
	mdr := w.register("mdr", 32)  // memory data register
	mar := w.register("mar", 32)  // memory address register
	sdr := w.register("sdr", 32)  // store data register
	hi := w.register("hi", 16)    // multiplier result, upper half
	lo := w.register("lo", 16)    // multiplier result, lower half
	mps := w.register("mps", 32)  // mult pipeline, carry-save sum
	mpc := w.register("mpc", 32)  // mult pipeline, carry-save carry
	ctl := w.register("ctl", 12)  // pipeline control bits
	flopsSoFar := 32 + 32 + 32*32 + 32 + 32 + 32 + 32 + 16 + 16 + 32 + 32 + 12

	// CSR / padding bank to reach the profile's flop count (the real
	// Plasma carries interrupt, coprocessor-0 and UART state).
	pad := p.Flops - p.PIRegs - flopsSoFar
	if pad < 0 {
		pad = 0
	}
	csr := w.register("csr", pad)

	// Primary inputs: external interrupt / memory interface (registered
	// automatically when the design is cut into two-phase form).
	extern := make([]*netlist.SeqNode, p.PIRegs)
	for i := range extern {
		extern[i] = w.b.PI(fmt.Sprintf("ext%d", i))
	}
	w.gndSeed = extern[0]

	// --- Fetch: the instruction-memory surrogate mixes PC bits through
	// a couple of XOR/AND layers; real fetch data is external anyway.
	instr := make(word, 32)
	for i := range instr {
		a := pc.q[(i*7+3)%32]
		b := pc.q[(i*11+14)%32]
		c := pc.q[(i*13+29)%32]
		e := extern[i%len(extern)]
		instr[i] = w.xor(w.and(a, b), w.xor(c, e))
	}

	// --- Decode fields from the instruction register.
	rs := ir.q[21:26]
	rt := ir.q[16:21]
	imm := ir.q[0:16]
	opcode := ir.q[26:32]

	// Register file read: two 32:1 mux trees per bit.
	readPort := func(sel word) word {
		out := make(word, 32)
		for bit := 0; bit < 32; bit++ {
			lanes := make(word, 32)
			for r := 0; r < 32; r++ {
				lanes[r] = regfile[r].q[bit]
			}
			out[bit] = w.muxTree(lanes, sel)
		}
		return out
	}
	opA := readPort(rs)
	opB := readPort(rt)

	// Sign-extended immediate.
	ext := make(word, 32)
	copy(ext, imm)
	for i := 16; i < 32; i++ {
		ext[i] = imm[15]
	}
	useImm := opcode[3]
	aluB := w.muxWord(opB, ext, useImm)

	// --- Execute: ALU.
	sub := opcode[1]
	bxor := w.xorWordBit(aluB, sub) // invert B for subtraction
	sum, cout := w.rippleAdder(opA, bxor, sub)
	andW := w.andWord(opA, aluB)
	orW := w.orWord(opA, aluB)
	xorW := w.xorWord(opA, aluB)
	// Unsigned set-less-than: a + ~b + 1 borrows exactly when a < b.
	slt := w.zeroExtend(w.not(cout), 32)
	shamt := ir.q[6:11]
	shifted := w.barrelShift(aluB, shamt, opcode[0])

	alu := w.muxWord(sum, andW, opcode[2])
	alu = w.muxWord(alu, orW, w.and(opcode[2], opcode[0]))
	alu = w.muxWord(alu, xorW, w.and(opcode[2], opcode[1]))
	alu = w.muxWord(alu, shifted, opcode[4])
	alu = w.muxWord(alu, slt, w.and(opcode[4], opcode[1]))

	// Multiply unit: a 16×16 carry-save array multiplier, pipelined like
	// the Plasma core's multicycle mult block: the redundant sum/carry
	// vectors are registered (mps/mpc) and resolved to HI/LO by a ripple
	// adder in the following cycle.
	msum, mcarry := w.arrayMultiplyCSA(opA[:16], aluB[:16])
	product, _ := w.rippleAdder(mps.q, mpc.q, nil)

	// Address generation: a dedicated adder computes the effective
	// address, and the store aligner rotates the store data by the low
	// address bits.
	effAddr, _ := w.rippleAdder(opA, ext, nil)
	storeAligned := w.barrelShift(opB, effAddr[:5], opcode[0])

	// Branch compare and next PC.
	eqBits := w.xorWord(opA, opB)
	neq := w.orTree(eqBits)
	takeBranch := w.and(opcode[5], w.not(neq))
	pcPlus4, _ := w.increment(pc.q, 4)
	target, _ := w.rippleAdder(pc.q, ext, nil)
	nextPC := w.muxWord(pcPlus4, target, takeBranch)

	// Memory interface surrogate: load data mixes MAR, the aligned
	// store path and externals through two XOR layers.
	loadData := make(word, 32)
	for i := range loadData {
		m := w.xor(mar.q[i], storeAligned[(i*3+7)%32])
		loadData[i] = w.xor(m, extern[(i*5+1)%len(extern)])
	}
	writeback := w.muxWord(alu, mdr.q, opcode[5])

	// Fold the multiplier result into the writeback path (MFHI/MFLO).
	mfhl := append(append(word{}, lo.q...), hi.q...)
	writeback = w.muxWord(writeback, mfhl, w.and(opcode[4], opcode[3]))

	// --- Register file write: decoder + per-bit write muxes.
	rd := ir.q[11:16]
	sel := w.decoder5(rd)
	writeEn := w.not(opcode[5])
	for r := 0; r < 32; r++ {
		en := w.and(sel[r], writeEn)
		if r == 0 {
			en = w.and(en, w.gnd()) // $zero never written
		}
		regfile[r].setD(w.muxWord(regfile[r].q, wbReg.q, en))
	}

	// --- Register D-side wiring.
	pc.setD(nextPC)
	ir.setD(instr)
	wbReg.setD(writeback)
	mdr.setD(loadData)
	mar.setD(effAddr)
	sdr.setD(storeAligned)
	mps.setD(msum)
	mpc.setD(mcarry)
	hi.setD(product[16:32])
	lo.setD(product[0:16])
	ctlD := make(word, len(ctl.q))
	for i := range ctlD {
		ctlD[i] = w.xor(opcode[i%6], ctl.q[(i+1)%len(ctl.q)])
	}
	ctl.setD(ctlD)
	if len(csr.q) > 0 {
		// The CSR bank counts like the core's timers, in independent
		// 32-bit slices (a single flat carry chain would dwarf the ALU
		// critical path), with datapath coupling so retiming sees real
		// fan-in cones.
		csrD := make(word, 0, len(csr.q))
		for off := 0; off < len(csr.q); off += 32 {
			end := off + 32
			if end > len(csr.q) {
				end = len(csr.q)
			}
			inc, _ := w.increment(csr.q[off:end], 1)
			csrD = append(csrD, inc...)
		}
		for i := range csrD {
			csrD[i] = w.xor(csrD[i], w.and(hi.q[i%16], writeback[i%32]))
		}
		csr.setD(csrD)
	}

	// Primary outputs: memory address and store data (registered when
	// the design is cut).
	for i := 0; i < p.PORegs; i++ {
		var src *netlist.SeqNode
		if i < 32 {
			src = w.buf(mar.q[i]) // isolate the PO load from the register Q
		} else if i < 64 {
			src = w.buf(sdr.q[i-32])
		} else {
			src = w.buf(writeback[i%32])
		}
		w.b.PO(fmt.Sprintf("out%d", i), src)
	}

	if w.err != nil {
		return nil, w.err
	}
	return w.b.Build()
}

// word is a little-endian vector of nodes.
type word []*netlist.SeqNode

// reg is a cut-cloud register: Q-side inputs now, D-side outputs later.
type reg struct {
	q    word
	setD func(d word)
}

// wordBuilder layers word-level construction over the netlist builder.
// Construction errors (register width mismatches) accumulate in err — the
// same pattern netlist.Builder uses — and surface from BuildPlasma
// instead of panicking mid-build.
type wordBuilder struct {
	b       *netlist.SeqBuilder
	lib     *cell.Library
	n       int
	gndN    *netlist.SeqNode
	gndSeed *netlist.SeqNode
	err     error
}

// fail records the first construction error.
func (w *wordBuilder) fail(format string, args ...interface{}) {
	if w.err == nil {
		w.err = fmt.Errorf(format, args...)
	}
}

func (w *wordBuilder) name(op string) string {
	w.n++
	return fmt.Sprintf("%s_%d", op, w.n)
}

func (w *wordBuilder) cell(f cell.Function) *cell.Cell { return w.lib.MustCell(f, 1) }

func (w *wordBuilder) not(a *netlist.SeqNode) *netlist.SeqNode {
	return w.b.Gate(w.name("inv"), w.cell(cell.FuncInv), a)
}
func (w *wordBuilder) buf(a *netlist.SeqNode) *netlist.SeqNode {
	return w.b.Gate(w.name("buf"), w.cell(cell.FuncBuf), a)
}
func (w *wordBuilder) and(a, b *netlist.SeqNode) *netlist.SeqNode {
	return w.b.Gate(w.name("and"), w.cell(cell.FuncAnd2), a, b)
}
func (w *wordBuilder) or(a, b *netlist.SeqNode) *netlist.SeqNode {
	return w.b.Gate(w.name("or"), w.cell(cell.FuncOr2), a, b)
}
func (w *wordBuilder) xor(a, b *netlist.SeqNode) *netlist.SeqNode {
	return w.b.Gate(w.name("xor"), w.cell(cell.FuncXor2), a, b)
}
func (w *wordBuilder) mux(a, b, s *netlist.SeqNode) *netlist.SeqNode {
	return w.b.Gate(w.name("mux"), w.cell(cell.FuncMux2), a, b, s)
}

// gnd builds a constant-0 surrogate: NOR(a, NOT a) = 0 for any driver a,
// seeded from the first external input.
func (w *wordBuilder) gnd() *netlist.SeqNode {
	if w.gndN == nil {
		a := w.gndSeed
		w.gndN = w.b.Gate(w.name("gnd"), w.cell(cell.FuncNor2), a, w.not(a))
	}
	return w.gndN
}

// register allocates a flip-flop register of the given width.
func (w *wordBuilder) register(name string, width int) reg {
	q := make(word, width)
	for i := range q {
		q[i] = w.b.FF(fmt.Sprintf("%s[%d]", name, i))
	}
	return reg{
		q: q,
		setD: func(d word) {
			if len(d) != width {
				w.fail("bench: register %s width %d, got %d", name, width, len(d))
				return
			}
			for i := range d {
				w.b.SetD(q[i], d[i])
			}
		},
	}
}

// rippleAdder sums a+b with optional carry-in node; cin may be nil.
func (w *wordBuilder) rippleAdder(a, b word, cin *netlist.SeqNode) (word, *netlist.SeqNode) {
	sum := make(word, len(a))
	carry := cin
	for i := range a {
		axb := w.xor(a[i], b[i])
		if carry == nil {
			sum[i] = w.buf(axb)
			carry = w.and(a[i], b[i])
			continue
		}
		sum[i] = w.xor(axb, carry)
		carry = w.or(w.and(a[i], b[i]), w.and(axb, carry))
	}
	return sum, carry
}

// increment adds the constant k (a power-of-two-ish small constant) to a.
func (w *wordBuilder) increment(a word, k int) (word, *netlist.SeqNode) {
	out := make(word, len(a))
	var carry *netlist.SeqNode
	for i := range a {
		bit := k >> i & 1
		switch {
		case bit == 0 && carry == nil:
			out[i] = w.buf(a[i])
		case bit == 1 && carry == nil:
			out[i] = w.not(a[i])
			carry = w.buf(a[i])
		case bit == 0:
			out[i] = w.xor(a[i], carry)
			carry = w.and(a[i], carry)
		default:
			out[i] = w.xor(w.not(a[i]), carry)
			carry = w.or(a[i], carry)
		}
	}
	return out, carry
}

// muxWord selects b when s else a, bitwise.
func (w *wordBuilder) muxWord(a, b word, s *netlist.SeqNode) word {
	out := make(word, len(a))
	for i := range a {
		out[i] = w.mux(a[i], b[i], s)
	}
	return out
}

// xorWordBit xors every bit with a single control (subtract inversion).
func (w *wordBuilder) xorWordBit(a word, s *netlist.SeqNode) word {
	out := make(word, len(a))
	for i := range a {
		out[i] = w.xor(a[i], s)
	}
	return out
}

func (w *wordBuilder) andWord(a, b word) word {
	out := make(word, len(a))
	for i := range a {
		out[i] = w.and(a[i], b[i])
	}
	return out
}

func (w *wordBuilder) orWord(a, b word) word {
	out := make(word, len(a))
	for i := range a {
		out[i] = w.or(a[i], b[i])
	}
	return out
}

func (w *wordBuilder) xorWord(a, b word) word {
	out := make(word, len(a))
	for i := range a {
		out[i] = w.xor(a[i], b[i])
	}
	return out
}

// zeroExtend places bit into position 0 padded by constant zeros built
// from self-masking pairs.
func (w *wordBuilder) zeroExtend(bit *netlist.SeqNode, width int) word {
	out := make(word, width)
	out[0] = bit
	for i := 1; i < width; i++ {
		out[i] = w.gnd()
	}
	return out
}

// muxTree reduces 2^k lanes with a k-bit select.
func (w *wordBuilder) muxTree(lanes word, sel word) *netlist.SeqNode {
	cur := lanes
	for level := 0; level < len(sel); level++ {
		next := make(word, 0, (len(cur)+1)/2)
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, w.mux(cur[i], cur[i+1], sel[level]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return cur[0]
}

// orTree reduces a word to a single OR.
func (w *wordBuilder) orTree(bits word) *netlist.SeqNode {
	cur := bits
	for len(cur) > 1 {
		next := make(word, 0, (len(cur)+1)/2)
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, w.or(cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return cur[0]
}

// decoder5 produces the 32 one-hot lines of a 5-bit select.
func (w *wordBuilder) decoder5(sel word) word {
	inv := make(word, len(sel))
	for i, s := range sel {
		inv[i] = w.not(s)
	}
	out := make(word, 32)
	for v := 0; v < 32; v++ {
		var acc *netlist.SeqNode
		for bit := 0; bit < 5; bit++ {
			lit := sel[bit]
			if v>>bit&1 == 0 {
				lit = inv[bit]
			}
			if acc == nil {
				acc = lit
			} else {
				acc = w.and(acc, lit)
			}
		}
		out[v] = acc
	}
	return out
}

// barrelShift shifts a by shamt, left when dir is false, right when true,
// through five mux stages.
func (w *wordBuilder) barrelShift(a word, shamt word, dir *netlist.SeqNode) word {
	left := a
	right := a
	for level := 0; level < len(shamt); level++ {
		k := 1 << level
		ls := make(word, len(a))
		rs := make(word, len(a))
		for i := range a {
			if i-k >= 0 {
				ls[i] = w.mux(left[i], left[i-k], shamt[level])
			} else {
				ls[i] = w.mux(left[i], w.gnd(), shamt[level])
			}
			if i+k < len(a) {
				rs[i] = w.mux(right[i], right[i+k], shamt[level])
			} else {
				rs[i] = w.mux(right[i], w.gnd(), shamt[level])
			}
		}
		left, right = ls, rs
	}
	return w.muxWord(left, right, dir)
}

// arrayMultiplyCSA builds an n×n carry-save array multiplier: each
// partial product row is folded into redundant sum/carry vectors with a
// 3:2 compressor per bit (constant depth per row). The caller resolves
// the redundant pair with an adder — registered in between, the way the
// Plasma core pipelines its multicycle mult block.
func (w *wordBuilder) arrayMultiplyCSA(a, b word) (word, word) {
	n := len(a)
	width := 2 * n
	sum := make(word, width)
	carry := make(word, width)
	for i := range sum {
		sum[i], carry[i] = w.gnd(), w.gnd()
	}
	for i := 0; i < n; i++ {
		next := make(word, width)
		ncarry := make(word, width)
		ncarry[0] = w.gnd()
		for k := 0; k < width; k++ {
			pp := w.gnd()
			if k >= i && k-i < n {
				pp = w.and(a[k-i], b[i])
			}
			axb := w.xor(sum[k], pp)
			next[k] = w.xor(axb, carry[k])
			cout := w.or(w.and(sum[k], pp), w.and(carry[k], axb))
			if k+1 < width {
				ncarry[k+1] = cout
			}
		}
		sum, carry = next, ncarry
	}
	return sum, carry
}
