package bench

import (
	"testing"

	"relatch/internal/cell"
)

// TestGeneratedCircuitsCarryPositions is the regression test for the
// AutoPos threading: both generator families (layered ISCAS89 profiles
// and the Plasma walker) must stamp every sequential node with a
// synthetic bench:// position, and the positions must survive Cut, so
// lint and certification diagnostics on generated circuits point at the
// emitting construction step instead of "-".
func TestGeneratedCircuitsCarryPositions(t *testing.T) {
	lib := cell.Default(1.0)
	for _, name := range []string{"s1196", "Plasma"} {
		t.Run(name, func(t *testing.T) {
			p, ok := ProfileByName(name)
			if !ok {
				t.Fatalf("no profile %q", name)
			}
			sc, err := p.BuildSeq(lib)
			if err != nil {
				t.Fatal(err)
			}
			wantFile := "bench://" + p.Name
			for _, n := range sc.Nodes {
				if n.Pos.IsZero() {
					t.Fatalf("node %q has no position", n.Name)
				}
				if n.Pos.File != wantFile {
					t.Fatalf("node %q position file = %q, want %q", n.Name, n.Pos.File, wantFile)
				}
			}
			cut, err := sc.Cut()
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range cut.Nodes {
				if n.Pos.IsZero() {
					t.Fatalf("cut node %q lost its position", n.Name)
				}
			}
		})
	}
}
