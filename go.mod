module relatch

go 1.22
