// Command analyzers runs the repo's custom static checks over the Go
// sources, using only the standard library go/ast toolchain (the repo
// carries no module dependencies, so golang.org/x/tools/go/analysis is
// deliberately not used).
//
// Three project conventions are enforced:
//
//  1. no bare panic: library code must return errors. panic( is allowed
//     only in _test.go files, in the fault-injection harness
//     (internal/faults, whose whole job is provoking failures), and in
//     functions whose name starts with Must — the established Go idiom
//     for fixture constructors with documented panic behavior
//     (cell.MustCell, fig4.MustCircuit, fig4.MustOptimalRetiming).
//
//  2. context plumbing: an exported function that calls a *Ctx API
//     (SolveCtx, RetimeCtx, RunCtx, ...) must itself accept a
//     context.Context, so cancellation reaches the solver from every
//     public entry point. Convenience wrappers that explicitly pass
//     context.Background() or context.TODO() as the first argument are
//     exempt — they are the documented "I have no context" shims — as
//     are _test.go files (Test* functions are not API) and function
//     literals that take their own context.Context parameter.
//
//  3. stderr discipline: library and example code must not write progress
//     with fmt.Fprint*(os.Stderr, ...) — structured logging through
//     log/slog with an obs handler (obs.NewLogger) replaced those lines.
//     Direct stderr writes are allowed only in cmd/ (the CLIs own their
//     error text and exit codes), under build/ (repo tooling), and in
//     _test.go files.
//
// Usage: go run ./build/analyzers [root...]  (default root ".").
// Exits 1 when any finding is reported, 2 on usage/IO errors.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var findings []string
	for _, root := range roots {
		fs, err := analyzeTree(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyzers: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "analyzers: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// analyzeTree walks root for .go files and collects findings.
func analyzeTree(root string) ([]string, error) {
	var findings []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS metadata and materialized build outputs (the
			// analyzer's own source lives under build/analyzers and is
			// still visited — it must satisfy its own rules).
			switch d.Name() {
			case ".git", "testdata", "lint-benches":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return fmt.Errorf("%s: %v", path, perr)
		}
		findings = append(findings, checkFile(fset, f, path)...)
		return nil
	})
	return findings, err
}

// checkFile applies both rules to one parsed file and returns the
// findings as "path:line:col: message" strings.
func checkFile(fset *token.FileSet, f *ast.File, path string) []string {
	var findings []string
	slashed := filepath.ToSlash(path)
	testFile := strings.HasSuffix(slashed, "_test.go")
	faultsPkg := strings.Contains(slashed, "internal/faults/")
	stderrOK := strings.Contains(slashed, "cmd/") || strings.Contains(slashed, "build/")

	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		if !testFile && !faultsPkg && !strings.HasPrefix(fn.Name.Name, "Must") {
			findings = append(findings, barePanics(fset, fn, path)...)
		}
		if !testFile && fn.Name.IsExported() && !acceptsContext(fn.Type) {
			findings = append(findings, unthreadedCtxCalls(fset, fn, path)...)
		}
		if !testFile && !stderrOK {
			findings = append(findings, stderrWrites(fset, fn, path)...)
		}
	}
	return findings
}

// stderrWrites reports fmt.Fprint/Fprintf/Fprintln calls whose first
// argument is os.Stderr. Library progress lines go through log/slog with
// an obs handler instead; only cmd/ and build/ own stderr directly.
func stderrWrites(fset *token.FileSet, fn *ast.FuncDecl, path string) []string {
	var findings []string
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "fmt" {
			return true
		}
		switch sel.Sel.Name {
		case "Fprint", "Fprintf", "Fprintln":
		default:
			return true
		}
		argSel, ok := call.Args[0].(*ast.SelectorExpr)
		if !ok {
			return true
		}
		argPkg, ok := argSel.X.(*ast.Ident)
		if !ok || argPkg.Name != "os" || argSel.Sel.Name != "Stderr" {
			return true
		}
		pos := fset.Position(call.Pos())
		findings = append(findings, fmt.Sprintf(
			"%s:%d:%d: %s writes to os.Stderr directly: use log/slog via obs.NewLogger (stderr belongs to cmd/)",
			path, pos.Line, pos.Column, fn.Name.Name))
		return true
	})
	return findings
}

// barePanics reports every panic( call in fn.
func barePanics(fset *token.FileSet, fn *ast.FuncDecl, path string) []string {
	var findings []string
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			pos := fset.Position(call.Pos())
			findings = append(findings, fmt.Sprintf(
				"%s:%d:%d: bare panic in %s: return an error, or rename the function Must%s",
				path, pos.Line, pos.Column, fn.Name.Name, fn.Name.Name))
		}
		return true
	})
	return findings
}

// acceptsContext reports whether any parameter of the function type has
// type context.Context.
func acceptsContext(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if sel, ok := field.Type.(*ast.SelectorExpr); ok {
			if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "context" && sel.Sel.Name == "Context" {
				return true
			}
		}
	}
	return false
}

// unthreadedCtxCalls reports calls to *Ctx APIs inside an exported
// function that does not itself take a context, except calls whose
// first argument is an explicit context.Background() or context.TODO().
// Function literals that accept their own context.Context parameter
// (registered callbacks, e.g. the fault-catalog Inject closures) are a
// separate plumbing scope and are not descended into.
func unthreadedCtxCalls(fset *token.FileSet, fn *ast.FuncDecl, path string) []string {
	var findings []string
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && acceptsContext(lit.Type) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		// Only exported-style *Ctx callees count as API entry points;
		// local helpers like newCtx are not cancellation surfaces.
		if !strings.HasSuffix(name, "Ctx") || name == "Ctx" || !ast.IsExported(name) {
			return true
		}
		if len(call.Args) > 0 && isExplicitNoContext(call.Args[0]) {
			return true
		}
		pos := fset.Position(call.Pos())
		findings = append(findings, fmt.Sprintf(
			"%s:%d:%d: exported %s calls %s without accepting a context.Context parameter",
			path, pos.Line, pos.Column, fn.Name.Name, name))
		return true
	})
	return findings
}

// calleeName extracts the bare function or method name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isExplicitNoContext matches context.Background() / context.TODO().
func isExplicitNoContext(arg ast.Expr) bool {
	call, ok := arg.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context" && (sel.Sel.Name == "Background" || sel.Sel.Name == "TODO")
}
