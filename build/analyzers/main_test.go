package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func run(t *testing.T, path, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return checkFile(fset, f, path)
}

func TestBarePanicRule(t *testing.T) {
	src := `package p
func Bad() { panic("boom") }
func MustFixture() { panic("documented") }
func alsoBad() { if true { panic("nested") } }
`
	got := run(t, "internal/x/x.go", src)
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(got), got)
	}
	if !strings.Contains(got[0], "bare panic in Bad") {
		t.Errorf("finding 0 = %q, want Bad flagged", got[0])
	}
	if !strings.Contains(got[1], "bare panic in alsoBad") {
		t.Errorf("finding 1 = %q, want alsoBad flagged", got[1])
	}
}

func TestBarePanicExemptions(t *testing.T) {
	src := `package p
func Helper() { panic("x") }
`
	if got := run(t, "internal/x/x_test.go", src); len(got) != 0 {
		t.Errorf("_test.go exemption broken: %v", got)
	}
	if got := run(t, "internal/faults/faults.go", src); len(got) != 0 {
		t.Errorf("faults exemption broken: %v", got)
	}
}

func TestContextRule(t *testing.T) {
	src := `package p
import "context"
func Run() error { _, err := SolveCtx(newCtx(), 1); _ = err; return err }
func RunCtx(ctx context.Context) error { _, err := SolveCtx(ctx, 1); _ = err; return err }
func Wrap() error { _, err := SolveCtx(context.Background(), 1); _ = err; return err }
func Todo() error { _, err := SolveCtx(context.TODO(), 1); _ = err; return err }
func quiet() error { _, err := SolveCtx(newCtx(), 1); _ = err; return err }
`
	got := run(t, "internal/x/x.go", src)
	if len(got) != 1 {
		t.Fatalf("got %d findings, want 1 (only Run): %v", len(got), got)
	}
	if !strings.Contains(got[0], "exported Run calls SolveCtx") {
		t.Errorf("finding = %q", got[0])
	}
}

func TestContextRuleMethodCalls(t *testing.T) {
	src := `package p
func Retime(c int) error { _, err := g.SolveCtx(bg(), c); _ = err; return err }
`
	got := run(t, "internal/x/x.go", src)
	if len(got) != 1 || !strings.Contains(got[0], "Retime calls SolveCtx") {
		t.Fatalf("method-call detection broken: %v", got)
	}
}

func TestStderrRule(t *testing.T) {
	src := `package p
import (
	"fmt"
	"os"
)
func Bad() { fmt.Fprintf(os.Stderr, "progress %d\n", 1) }
func AlsoBad() { fmt.Fprintln(os.Stderr, "done") }
func Fine() { fmt.Fprintf(os.Stdout, "result\n") }
func fprintfElsewhere(w *os.File) { fmt.Fprintf(w, "x") }
`
	got := run(t, "internal/x/x.go", src)
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(got), got)
	}
	for _, f := range got {
		if !strings.Contains(f, "writes to os.Stderr directly") {
			t.Errorf("finding = %q", f)
		}
	}
	if got := run(t, "cmd/x/main.go", src); len(got) != 0 {
		t.Errorf("cmd/ exemption broken: %v", got)
	}
	if got := run(t, "build/tool/main.go", src); len(got) != 0 {
		t.Errorf("build/ exemption broken: %v", got)
	}
	if got := run(t, "internal/x/x_test.go", src); len(got) != 0 {
		t.Errorf("_test.go exemption broken: %v", got)
	}
}

// TestRepoIsClean runs both rules over the actual repository tree; the
// conventions the analyzer encodes must hold on the code that ships.
func TestRepoIsClean(t *testing.T) {
	findings, err := analyzeTree("../..")
	if err != nil {
		t.Fatalf("analyzeTree: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
