// Command benchgen materializes the synthetic benchmark suite as
// structural Verilog netlists (the ISCAS89 subset), so the circuits the
// experiments run on can be inspected, archived, or fed to other tools.
//
// Usage:
//
//	benchgen -out ./benchmarks [-benchmarks s1196,Plasma]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/verilog"
)

func main() {
	out := flag.String("out", "benchmarks", "output directory")
	names := flag.String("benchmarks", "", "comma-separated subset (default: all)")
	flag.Parse()

	want := map[string]bool{}
	if *names != "" {
		for _, n := range strings.Split(*names, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatalf("%v", err)
	}
	lib := cell.Default(1.0)
	for _, p := range bench.ISCAS89 {
		if len(want) > 0 && !want[p.Name] {
			continue
		}
		seq, err := p.BuildSeq(lib)
		if err != nil {
			fatalf("%s: %v", p.Name, err)
		}
		path := filepath.Join(*out, p.Name+".v")
		f, err := os.Create(path)
		if err != nil {
			fatalf("%v", err)
		}
		if err := verilog.Write(f, seq); err != nil {
			f.Close()
			fatalf("%s: %v", p.Name, err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s (%d flops, %d gates)\n", path, len(seq.FFs), seq.GateCount())
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchgen: "+format+"\n", args...)
	os.Exit(1)
}
