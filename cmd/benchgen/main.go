// Command benchgen materializes the synthetic benchmark suite as
// structural Verilog netlists (the ISCAS89 subset), so the circuits the
// experiments run on can be inspected, archived, or fed to other tools.
//
// Usage:
//
//	benchgen -out ./benchmarks [-benchmarks s1196,Plasma] [-timeout 1m]
//
// Exit codes: 0 success, 1 runtime error, 2 usage error, 3 timeout or
// interrupt.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/verilog"
)

func main() {
	out := flag.String("out", "benchmarks", "output directory")
	names := flag.String("benchmarks", "", "comma-separated subset (default: all)")
	timeout := flag.Duration("timeout", 0, "abort generation after this duration (0 = none)")
	flag.Parse()

	want := map[string]bool{}
	matched := map[string]bool{}
	if *names != "" {
		for _, n := range strings.Split(*names, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatalf(1, "%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	lib := cell.Default(1.0)
	for _, p := range bench.ISCAS89 {
		if len(want) > 0 && !want[p.Name] {
			continue
		}
		matched[p.Name] = true
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: stopped before %s: %v\n", p.Name, err)
			os.Exit(3)
		}
		seq, err := p.BuildSeq(lib)
		if err != nil {
			fatalf(1, "%s: %v", p.Name, err)
		}
		path := filepath.Join(*out, p.Name+".v")
		f, err := os.Create(path)
		if err != nil {
			fatalf(1, "%v", err)
		}
		if err := verilog.Write(f, seq); err != nil {
			f.Close()
			fatalf(1, "%s: %v", p.Name, err)
		}
		if err := f.Close(); err != nil {
			fatalf(1, "%v", err)
		}
		fmt.Printf("wrote %s (%d flops, %d gates)\n", path, len(seq.FFs), seq.GateCount())
	}
	for n := range want {
		if !matched[n] {
			fatalf(2, "unknown benchmark %q", n)
		}
	}
}

func fatalf(code int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchgen: "+format+"\n", args...)
	os.Exit(code)
}
