// Command rar retimes one circuit with a chosen approach and prints the
// resulting sequential cost, error-detecting masters and latch placement
// summary. Circuits come either from the built-in benchmark suite or
// from a structural Verilog netlist (ISCAS89 subset).
//
// Usage:
//
//	rar -bench s1423 -approach grar -c 1.0
//	rar -verilog s27.v -approach rvl -c 2.0 -dump
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/clocking"
	"relatch/internal/core"
	"relatch/internal/edl"
	"relatch/internal/flow"
	"relatch/internal/netlist"
	"relatch/internal/sta"
	"relatch/internal/verilog"
	"relatch/internal/vlib"
)

func main() {
	benchName := flag.String("bench", "", "built-in benchmark name (see -list)")
	verilogPath := flag.String("verilog", "", "structural Verilog netlist to retime instead")
	list := flag.Bool("list", false, "list built-in benchmarks and exit")
	approach := flag.String("approach", "grar", "retiming approach: grar, base, nvl, evl or rvl")
	overhead := flag.Float64("c", 1.0, "EDL overhead factor c")
	method := flag.String("method", "simplex", "flow solver: simplex or ssp")
	gateModel := flag.Bool("gate-model", false, "optimize with the conservative gate-delay model")
	dump := flag.Bool("dump", false, "dump the slave-latch placement")
	instrument := flag.String("instrument", "", "write the error-detection-instrumented netlist (Verilog) to this file")
	clusterSize := flag.Int("cluster", 8, "error-detecting latch cluster size for -instrument")
	flag.Parse()

	if *list {
		for _, p := range bench.ISCAS89 {
			fmt.Printf("%-8s flops=%-5d gates≈%-6d NCE=%d\n", p.Name, p.Flops, p.Gates, p.NCE)
		}
		return
	}

	lib := cell.Default(*overhead)
	var c *netlist.Circuit
	var seq *netlist.SeqCircuit
	var scheme clocking.Scheme
	switch {
	case *benchName != "":
		prof, ok := bench.ProfileByName(*benchName)
		if !ok {
			fatalf("unknown benchmark %q (try -list)", *benchName)
		}
		var err error
		if seq, err = prof.BuildSeq(lib); err != nil {
			fatalf("%v", err)
		}
		if c, scheme, err = prof.CutAndCalibrate(seq); err != nil {
			fatalf("%v", err)
		}
	case *verilogPath != "":
		f, err := os.Open(*verilogPath)
		if err != nil {
			fatalf("%v", err)
		}
		seq, err = verilog.Parse(f, lib)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
		if c, err = seq.Cut(); err != nil {
			fatalf("%v", err)
		}
		scheme = bench.SchemeFor(c, sta.DefaultOptions(lib))
	default:
		fatalf("need -bench or -verilog (try -list)")
	}

	m := flow.MethodSimplex
	if *method == "ssp" {
		m = flow.MethodSSP
	}

	fmt.Printf("circuit %s: %d gates, %d boundary registers, %s\n",
		c.Name, c.GateCount(), c.FlopCount(), scheme)

	var placement *netlist.Placement
	var edMasters map[int]bool
	switch *approach {
	case "grar", "base":
		opt := core.Options{Scheme: scheme, EDLCost: *overhead, Method: m}
		if *gateModel {
			opt.TimingModel = sta.ModelGate
		}
		ap := core.ApproachGRAR
		if *approach == "base" {
			ap = core.ApproachBase
		}
		res, err := core.Retime(c, opt, ap)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%s: %d slave latches, %d masters, %d error-detecting\n",
			ap, res.SlaveCount, res.MasterCount, res.EDCount)
		fmt.Printf("sequential area %.2f, total area %.2f, runtime %v\n",
			res.SeqArea, res.TotalArea, res.Runtime)
		if len(res.Violations) > 0 {
			fmt.Printf("WARNING: %d residual timing violations\n", len(res.Violations))
		}
		placement = res.Placement
		edMasters = res.EDMasters
	case "nvl", "evl", "rvl":
		variant := map[string]vlib.Variant{"nvl": vlib.NVL, "evl": vlib.EVL, "rvl": vlib.RVL}[*approach]
		res, err := vlib.Retime(c, vlib.Options{Scheme: scheme, EDLCost: *overhead, Method: m, PostSwap: true}, variant)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%v: %d slave latches, %d masters, %d error-detecting (%d swaps, %d upsized)\n",
			variant, res.SlaveCount, res.MasterCount, res.EDCount, res.Swaps, res.Upsized)
		fmt.Printf("sequential area %.2f, total area %.2f, runtime %v\n",
			res.SeqArea, res.TotalArea, res.Runtime)
		placement = res.Placement
		edMasters = res.EDMasters
	default:
		fatalf("unknown approach %q", *approach)
	}

	if *instrument != "" {
		names := edFlopNames(c, edMasters)
		if len(names) == 0 {
			fmt.Println("no error-detecting masters; writing the design uninstrumented")
		}
		inst, err := edl.Instrument(seq, names, *clusterSize)
		if err != nil {
			fatalf("instrument: %v", err)
		}
		f, err := os.Create(*instrument)
		if err != nil {
			fatalf("%v", err)
		}
		if err := verilog.Write(f, inst); err != nil {
			f.Close()
			fatalf("%v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote instrumented netlist with %d detectors to %s\n", len(names), *instrument)
	}

	if *dump && placement != nil {
		fmt.Println("slave latches at the outputs of:")
		drivers := placement.LatchedDrivers()
		names := make([]string, 0, len(drivers))
		for _, id := range drivers {
			names = append(names, c.Nodes[id].Name)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %s\n", n)
		}
	}
}

// edFlopNames maps error-detecting cut endpoints back to the sequential
// design's register names ("<ff>/D" endpoints; registered primary
// outputs have no state register to protect and are skipped).
func edFlopNames(c *netlist.Circuit, ed map[int]bool) []string {
	var names []string
	for id := range ed {
		name := c.Nodes[id].Name
		if n := strings.TrimSuffix(name, "/D"); n != name {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "rar: "+format+"\n", args...)
	os.Exit(1)
}
