// Command rar retimes one circuit with a chosen approach and prints the
// resulting sequential cost, error-detecting masters and latch placement
// summary. Circuits come either from the built-in benchmark suite or
// from a structural Verilog netlist (ISCAS89 subset).
//
// Usage:
//
//	rar -bench s1423 -approach grar -c 1.0
//	rar -verilog s27.v -approach rvl -c 2.0 -dump
//	rar -verilog s27.v -lint
//	rar -bench s1196 -lint -lint-json
//	rar -bench s5378 -approach grar -trace -metrics
//	rar -bench s5378 -trace-chrome trace.json
//	rar -bench-json -bench all -approach grar,base,nvl,evl,rvl
//
// With -lint the circuit is statically analyzed instead of retimed: every
// lint rule runs (see -lint-disable) and diagnostics print with source
// positions, as JSON under -lint-json. -timeout applies to lint-only mode
// the same as to retiming runs.
//
// With -certify the run prints the independent output certificate —
// structural equivalence, retiming-label legality, EDL soundness and cost
// accounting re-derived from the result — as text, or as JSON under
// -certify-json. The core approaches (grar, base) always run the
// certifier as a post-solve gate; the flag additionally certifies the
// virtual-library approaches and renders the certificate.
//
// The trace flags observe the pipeline: -trace prints the span tree
// (per-stage durations, simplex pivots, SSP augmenting paths, LP sizes)
// to stderr, -trace-json the same as JSON, -metrics a Prometheus-style
// dump, and -trace-chrome writes a chrome://tracing-loadable file; stdout
// stays machine-pure throughout. -bench-json runs benchmark×approach
// cells and prints one JSON row each on stdout (see make bench).
//
// Exit codes: 0 success, 1 runtime error, 2 usage error, 3 timeout or
// interrupt, 4 lint findings (error-severity diagnostics; warnings alone
// exit 0), 5 certification findings.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/cert"
	"relatch/internal/clocking"
	"relatch/internal/core"
	"relatch/internal/edl"
	"relatch/internal/flow"
	"relatch/internal/lint"
	"relatch/internal/netlist"
	"relatch/internal/obs"
	"relatch/internal/sta"
	"relatch/internal/verilog"
	"relatch/internal/vlib"
)

// usageError marks errors caused by bad invocation rather than a failed
// run; main maps them to exit code 2.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func usagef(format string, args ...interface{}) error {
	return usageError{msg: fmt.Sprintf(format, args...)}
}

func main() {
	benchName := flag.String("bench", "", "built-in benchmark name (see -list)")
	verilogPath := flag.String("verilog", "", "structural Verilog netlist to retime instead")
	list := flag.Bool("list", false, "list built-in benchmarks and exit")
	approach := flag.String("approach", "grar", "retiming approach: grar, base, nvl, evl or rvl")
	overhead := flag.Float64("c", 1.0, "EDL overhead factor c")
	method := flag.String("method", "auto", "flow solver: auto (simplex with certified ssp fallback), simplex or ssp")
	gateModel := flag.Bool("gate-model", false, "optimize with the conservative gate-delay model")
	dump := flag.Bool("dump", false, "dump the slave-latch placement")
	instrument := flag.String("instrument", "", "write the error-detection-instrumented netlist (Verilog) to this file")
	clusterSize := flag.Int("cluster", 8, "error-detecting latch cluster size for -instrument")
	lintOnly := flag.Bool("lint", false, "lint the circuit instead of retiming it (exit 4 on findings)")
	lintJSON := flag.Bool("lint-json", false, "with -lint, print diagnostics as JSON (implies -lint)")
	lintDisable := flag.String("lint-disable", "", "comma-separated lint rule IDs to skip")
	certify := flag.Bool("certify", false, "print the independent output certificate (exit 5 on findings)")
	certifyJSON := flag.Bool("certify-json", false, "with -certify, print the certificate as JSON (implies -certify)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	trace := flag.Bool("trace", false, "print the pipeline span tree (stages, durations, solver counters) to stderr")
	traceJSON := flag.Bool("trace-json", false, "print the span tree as JSON to stderr")
	traceChrome := flag.String("trace-chrome", "", "write the trace in Chrome trace-event format to this file (load via chrome://tracing or Perfetto)")
	metrics := flag.Bool("metrics", false, "print Prometheus-style metrics for the run to stderr")
	benchJSON := flag.Bool("bench-json", false, "benchmark mode: run -bench (comma-separated list) × -approach (comma-separated list) and print one JSON record per row to stdout")
	jobs := flag.Int("j", 1, "parallel retiming jobs for -bench-json and -serve (0 = all cores); results are identical at any setting")
	cacheDir := flag.String("cache-dir", "", "content-addressed result cache directory (validated on load; empty = in-memory only)")
	serveAddr := flag.String("serve", "", "serve the retiming job API over HTTP on this address (e.g. :8080) instead of running locally")
	serveTimeout := flag.Duration("serve-timeout", 2*time.Minute, "per-request HTTP timeout in -serve mode (jobs keep running; 0 = none)")
	queueDir := flag.String("queue-dir", "", "write-ahead job journal directory for -serve; restarting on the same dir recovers queued and in-flight jobs (empty = in-memory queue)")
	queueCap := flag.Int("queue-cap", 0, "bound on queued+running jobs in -serve mode; submissions beyond it get 429 (0 = default 1024)")
	leaseTTL := flag.Duration("lease-ttl", 0, "worker lease duration in -serve mode; an expired lease requeues the job (0 = default 2m)")
	jobRetries := flag.Int("job-retries", 0, "per-job attempt budget in -serve mode before the dead-letter state (0 = default 5)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this private address in -serve mode (e.g. 127.0.0.1:6060; empty = off)")
	peers := flag.String("peers", "", "static cluster membership for -serve as comma-separated id=url pairs (self's URL may be empty); enables sharded routing and the peer cache tier")
	nodeID := flag.String("node-id", "", "this node's ID within -peers (required when -peers is set)")
	authFile := flag.String("auth-file", "", "JSON client-policy file gating the -serve API: bearer tokens with rate limits and quotas (empty = open API)")
	flag.Parse()

	if *list {
		for _, p := range bench.ISCAS89 {
			fmt.Printf("%-8s flops=%-5d gates≈%-6d NCE=%d\n", p.Name, p.Flops, p.Gates, p.NCE)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// In serve mode the process runs until SIGINT; -timeout becomes the
	// per-job solve deadline instead of a whole-process one.
	if *timeout > 0 && *serveAddr == "" {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	o := options{
		benchName:    *benchName,
		verilogPath:  *verilogPath,
		approach:     *approach,
		overhead:     *overhead,
		method:       *method,
		gateModel:    *gateModel,
		dump:         *dump,
		instrument:   *instrument,
		clusterSize:  *clusterSize,
		lint:         *lintOnly || *lintJSON,
		lintJSON:     *lintJSON,
		lintDisable:  *lintDisable,
		certify:      *certify || *certifyJSON,
		certifyJSON:  *certifyJSON,
		trace:        *trace,
		traceJSON:    *traceJSON,
		traceChrome:  *traceChrome,
		metrics:      *metrics,
		jobs:         *jobs,
		cacheDir:     *cacheDir,
		serveAddr:    *serveAddr,
		serveTimeout: *serveTimeout,
		queueDir:     *queueDir,
		queueCap:     *queueCap,
		leaseTTL:     *leaseTTL,
		jobRetries:   *jobRetries,
		debugAddr:    *debugAddr,
		peers:        *peers,
		nodeID:       *nodeID,
		authFile:     *authFile,
		timeout:      *timeout,
	}

	var err error
	switch {
	case *serveAddr != "":
		err = runServe(ctx, o)
	case *benchJSON:
		err = runBenchJSON(ctx, o)
	default:
		var tr *obs.Tracer
		if o.traced() {
			tr = obs.New("rar")
			ctx = obs.WithTracer(ctx, tr)
		}
		err = run(ctx, o)
		if tr != nil {
			tr.Finish()
			if xerr := exportTrace(tr.Report(), o); err == nil {
				err = xerr
			}
		}
	}
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "rar: %v\n", err)
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		os.Exit(3)
	case errors.As(err, &usageError{}):
		os.Exit(2)
	case errors.Is(err, lint.ErrFindings):
		os.Exit(4)
	case errors.Is(err, cert.ErrNotCertified):
		os.Exit(5)
	default:
		os.Exit(1)
	}
}

type options struct {
	benchName, verilogPath string
	approach               string
	overhead               float64
	method                 string
	gateModel              bool
	dump                   bool
	instrument             string
	clusterSize            int
	lint                   bool
	lintJSON               bool
	lintDisable            string
	certify                bool
	certifyJSON            bool
	trace                  bool
	traceJSON              bool
	traceChrome            string
	metrics                bool
	jobs                   int
	cacheDir               string
	serveAddr              string
	serveTimeout           time.Duration
	queueDir               string
	queueCap               int
	leaseTTL               time.Duration
	jobRetries             int
	debugAddr              string
	peers                  string
	nodeID                 string
	authFile               string
	timeout                time.Duration
}

// traced reports whether any trace/metrics export was requested.
func (o options) traced() bool {
	return o.trace || o.traceJSON || o.traceChrome != "" || o.metrics
}

// exportTrace renders the finished report per the output flags. Trace
// output goes to stderr (or the named Chrome-trace file) so stdout keeps
// its machine-purity contracts (-lint-json, -certify-json, -bench-json).
func exportTrace(rep *obs.Report, o options) error {
	if o.trace {
		rep.WriteText(os.Stderr)
	}
	if o.traceJSON {
		if err := rep.WriteJSON(os.Stderr); err != nil {
			return err
		}
	}
	if o.metrics {
		rep.WriteMetrics(os.Stderr)
	}
	if o.traceChrome != "" {
		f, err := os.Create(o.traceChrome)
		if err != nil {
			return err
		}
		if err := rep.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

func run(ctx context.Context, o options) error {
	lib := cell.Default(o.overhead)
	var c *netlist.Circuit
	var seq *netlist.SeqCircuit
	var scheme clocking.Scheme
	switch {
	case o.benchName != "":
		prof, ok := bench.ProfileByName(o.benchName)
		if !ok {
			return usagef("unknown benchmark %q (try -list)", o.benchName)
		}
		var err error
		if seq, err = prof.BuildSeq(lib); err != nil {
			return err
		}
		if c, scheme, err = prof.CutAndCalibrate(seq); err != nil {
			return err
		}
	case o.verilogPath != "":
		f, err := os.Open(o.verilogPath)
		if err != nil {
			return err
		}
		seq, err = verilog.ParseNamedCtx(ctx, f, lib, o.verilogPath)
		f.Close()
		if err != nil {
			return err
		}
		if c, err = seq.Cut(); err != nil {
			return err
		}
		scheme = bench.SchemeFor(c, sta.DefaultOptions(lib))
	default:
		return usagef("need -bench or -verilog (try -list)")
	}

	if o.lint {
		return runLint(ctx, c, scheme, o)
	}

	m, err := flow.ParseMethod(o.method)
	if err != nil {
		return usagef("%v", err)
	}

	// With -certify-json the machine-readable certificate owns stdout,
	// the same purity contract -lint-json keeps for diagnostics; the
	// human progress lines move to stderr.
	info := io.Writer(os.Stdout)
	if o.certifyJSON {
		info = os.Stderr
	}

	fmt.Fprintf(info, "circuit %s: %d gates, %d boundary registers, %s\n",
		c.Name, c.GateCount(), c.FlopCount(), scheme)

	var placement *netlist.Placement
	var edMasters map[int]bool
	switch o.approach {
	case "grar", "base":
		opt := core.Options{Scheme: scheme, EDLCost: o.overhead, Method: m}
		if o.gateModel {
			opt.TimingModel = sta.ModelGate
		}
		ap := core.ApproachGRAR
		if o.approach == "base" {
			ap = core.ApproachBase
		}
		res, err := core.RetimeCtx(ctx, c, opt, ap)
		if err != nil {
			// The post-solve gate attaches the certificate even when it
			// fails; render the findings before surfacing exit code 5.
			if res != nil && res.Certificate != nil && o.certify {
				if cerr := emitCertificate(res.Certificate, o); cerr != nil {
					return cerr
				}
			}
			return err
		}
		fmt.Fprintf(info, "%s: %d slave latches, %d masters, %d error-detecting\n",
			ap, res.SlaveCount, res.MasterCount, res.EDCount)
		fmt.Fprintf(info, "sequential area %.2f, total area %.2f, runtime %v (solver %v%s)\n",
			res.SeqArea, res.TotalArea, res.Runtime, res.Solver, fallbackNote(res.SolverFallback, res.FallbackReason))
		if len(res.Violations) > 0 {
			fmt.Fprintf(info, "WARNING: %d residual timing violations\n", len(res.Violations))
		}
		if o.certify {
			if err := emitCertificate(res.Certificate, o); err != nil {
				return err
			}
		}
		placement = res.Placement
		edMasters = res.EDMasters
	case "nvl", "evl", "rvl":
		variant := map[string]vlib.Variant{"nvl": vlib.NVL, "evl": vlib.EVL, "rvl": vlib.RVL}[o.approach]
		shape := cert.Snapshot(c)
		res, err := vlib.RetimeCtx(ctx, c, vlib.Options{Scheme: scheme, EDLCost: o.overhead, Method: m, PostSwap: true}, variant)
		if err != nil {
			return err
		}
		fmt.Fprintf(info, "%v: %d slave latches, %d masters, %d error-detecting (%d swaps, %d upsized)\n",
			variant, res.SlaveCount, res.MasterCount, res.EDCount, res.Swaps, res.Upsized)
		fmt.Fprintf(info, "sequential area %.2f, total area %.2f, runtime %v\n",
			res.SeqArea, res.TotalArea, res.Runtime)
		if o.certify {
			// The virtual-library flow retimes a sized clone: compare
			// gates by logic function (the incremental compile changes
			// drive strengths, never functions).
			crt, err := cert.Run(ctx, cert.Subject{
				Original:    shape,
				Retimed:     res.Circuit,
				Placement:   res.Placement,
				Scheme:      scheme,
				Latch:       res.Circuit.Lib.BaseLatch,
				EDMasters:   res.EDMasters,
				SlaveCount:  res.SlaveCount,
				MasterCount: res.MasterCount,
				EDCount:     res.EDCount,
				SeqArea:     res.SeqArea,
				EDLCost:     o.overhead,
				Approach:    variant.String(),
			}, cert.Config{AllowResizing: true})
			if err != nil {
				return err
			}
			if cerr := emitCertificate(crt, o); cerr != nil {
				return cerr
			}
			if ferr := crt.Err(); ferr != nil {
				return ferr
			}
		}
		placement = res.Placement
		edMasters = res.EDMasters
	default:
		return usagef("unknown approach %q", o.approach)
	}

	if o.instrument != "" {
		names := edFlopNames(c, edMasters)
		if len(names) == 0 {
			fmt.Println("no error-detecting masters; writing the design uninstrumented")
		}
		inst, err := edl.Instrument(seq, names, o.clusterSize)
		if err != nil {
			return fmt.Errorf("instrument: %w", err)
		}
		f, err := os.Create(o.instrument)
		if err != nil {
			return err
		}
		if err := verilog.Write(f, inst); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote instrumented netlist with %d detectors to %s\n", len(names), o.instrument)
	}

	if o.dump && placement != nil {
		fmt.Println("slave latches at the outputs of:")
		drivers := placement.LatchedDrivers()
		names := make([]string, 0, len(drivers))
		for _, id := range drivers {
			names = append(names, c.Nodes[id].Name)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %s\n", n)
		}
	}
	return nil
}

// runLint is the -lint mode: run every enabled rule, print the
// diagnostics, and surface lint.ErrFindings (exit 4) when any
// error-severity diagnostic fired.
func runLint(ctx context.Context, c *netlist.Circuit, scheme clocking.Scheme, o options) error {
	cfg := lint.Config{}
	if o.lintDisable != "" {
		cfg.Disabled = make(map[string]bool)
		for _, id := range strings.Split(o.lintDisable, ",") {
			if id = strings.TrimSpace(id); id != "" {
				cfg.Disabled[id] = true
			}
		}
	}
	if err := cfg.Validate(); err != nil {
		return usagef("%v", err)
	}
	rep, err := lint.Run(ctx, lint.Input{
		Circuit: c,
		Scheme:  &scheme,
		EDLCost: o.overhead,
		File:    o.verilogPath,
	}, cfg)
	if err != nil {
		return err
	}
	if o.lintJSON {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		rep.WriteText(os.Stdout)
	}
	return rep.Err()
}

// emitCertificate renders a certificate per the output flags.
func emitCertificate(crt *cert.Certificate, o options) error {
	if o.certifyJSON {
		return crt.WriteJSON(os.Stdout)
	}
	return crt.WriteText(os.Stdout)
}

func fallbackNote(fellBack bool, reason string) string {
	if !fellBack {
		return ""
	}
	return fmt.Sprintf(", fell back from simplex: %s", reason)
}

// edFlopNames maps error-detecting cut endpoints back to the sequential
// design's register names ("<ff>/D" endpoints; registered primary
// outputs have no state register to protect and are skipped).
func edFlopNames(c *netlist.Circuit, ed map[int]bool) []string {
	var names []string
	for id := range ed {
		name := c.Nodes[id].Name
		if n := strings.TrimSuffix(name, "/D"); n != name {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}
