package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/core"
	"relatch/internal/engine"
	"relatch/internal/flow"
	"relatch/internal/obs"
	"relatch/internal/sta"
)

// benchSchemaVersion identifies the BENCH_pipeline.json layout: bumped
// when rows gain/lose columns or the envelope changes shape. v3 made
// solver/fallback unconditionally present: omitempty on solver meant
// vlib rows (which have no LP solver) silently dropped the column, so
// the row schema depended on the approach.
const benchSchemaVersion = 3

// benchRow is one benchmark×approach measurement of the bench-json mode.
// Everything except wall_ms is deterministic for a given build, so
// committed snapshots diff cleanly on the columns that matter.
type benchRow struct {
	Bench         string  `json:"bench"`
	Approach      string  `json:"approach"`
	WallMS        float64 `json:"wall_ms"`
	Pivots        int64   `json:"pivots"`
	Augmentations int64   `json:"augmentations"`
	Solver        string  `json:"solver"`
	Fallback      bool    `json:"fallback"`
	Slaves        int     `json:"slaves"`
	Masters       int     `json:"masters"`
	ED            int     `json:"ed"`
	SeqArea       float64 `json:"seq_area"`
	TotalArea     float64 `json:"total_area"`
	// Cache records where a warm-cache row came from ("memory" or
	// "disk"); empty — and omitted — on cold, solved rows.
	Cache string `json:"cache,omitempty"`
}

// benchDoc is the envelope -bench-json emits: a schema version plus the
// rows sorted by (bench, approach), so equal results diff byte-equal.
type benchDoc struct {
	SchemaVersion int        `json:"schema_version"`
	Rows          []benchRow `json:"rows"`
}

// parseBenchList resolves the comma-separated -bench list ("all" expands
// to the whole suite), rejecting unknown and duplicate names up front so
// a bad token costs a usage error, not half a sweep.
func parseBenchList(arg string) ([]bench.Profile, error) {
	if arg == "" {
		return nil, usagef("-bench-json needs -bench (comma-separated benchmark names; try -list)")
	}
	if arg == "all" {
		return bench.ISCAS89, nil
	}
	var out []bench.Profile
	seen := make(map[string]bool)
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		prof, ok := bench.ProfileByName(name)
		if !ok {
			return nil, usagef("unknown benchmark %q in -bench (try -list)", name)
		}
		if seen[name] {
			return nil, usagef("duplicate benchmark %q in -bench", name)
		}
		seen[name] = true
		out = append(out, prof)
	}
	if len(out) == 0 {
		return nil, usagef("-bench list %q names no benchmarks", arg)
	}
	return out, nil
}

// parseApproachList resolves the comma-separated -approach list the same
// way: every token is checked before any work starts.
func parseApproachList(arg string) ([]engine.Approach, error) {
	var out []engine.Approach
	seen := make(map[engine.Approach]bool)
	for _, tok := range strings.Split(arg, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		ap, err := engine.ParseApproach(tok)
		if err != nil {
			return nil, usagef("unknown approach %q in -approach (want grar, base, nvl, evl or rvl)", tok)
		}
		if seen[ap] {
			return nil, usagef("duplicate approach %q in -approach", tok)
		}
		seen[ap] = true
		out = append(out, ap)
	}
	if len(out) == 0 {
		return nil, usagef("-approach list %q names no approaches", arg)
	}
	return out, nil
}

// runBenchJSON is the -bench-json mode: run every benchmark in the
// -bench list under every approach in the -approach list as engine jobs
// (-j bounds the worker pool; results are identical at any -j), then
// print the sorted rows inside a versioned envelope on stdout.
func runBenchJSON(ctx context.Context, o options) error {
	rows, stats, err := benchSweep(ctx, o)
	if err != nil {
		return err
	}
	for _, row := range rows {
		fmt.Fprintf(os.Stderr, "%-8s %-7s %8.1f ms  pivots=%-6d augmentations=%-6d seq_area=%.2f\n",
			row.Bench, row.Approach, row.WallMS, row.Pivots, row.Augmentations, row.SeqArea)
	}
	if stats.Cache.Hits+stats.Cache.DiskHits > 0 || o.cacheDir != "" {
		fmt.Fprintf(os.Stderr, "engine cache: %d memory hits, %d disk hits, %d misses, %d stored, %d evicted, %d poisoned\n",
			stats.Cache.Hits, stats.Cache.DiskHits, stats.Cache.Misses,
			stats.Cache.Stores, stats.Cache.Evictions, stats.Cache.Poisoned)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(benchDoc{SchemaVersion: benchSchemaVersion, Rows: rows})
}

// benchSweep validates the lists, submits every benchmark×approach cell
// to a fresh engine, and collects rows in submission order (so the
// output is independent of completion order) before sorting them by
// (bench, approach). Solver effort comes from a per-row tracer: pivots
// is the sum over that row's flow.simplex spans, augmentations over its
// flow.ssp spans — both zero when the row came from the cache.
func benchSweep(ctx context.Context, o options) ([]benchRow, engine.Stats, error) {
	m, err := flow.ParseMethod(o.method)
	if err != nil {
		return nil, engine.Stats{}, usagef("%v", err)
	}
	benches, err := parseBenchList(o.benchName)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	approaches, err := parseApproachList(o.approach)
	if err != nil {
		return nil, engine.Stats{}, err
	}

	cache, err := engine.NewCache(0, o.cacheDir)
	if err != nil {
		return nil, engine.Stats{}, err
	}
	eng := engine.New(engine.Config{Workers: o.jobs, Cache: cache})
	defer eng.Close()

	lib := cell.Default(o.overhead)
	type sweepCell struct {
		prof   bench.Profile
		ap     engine.Approach
		tracer *obs.Tracer
		ticket *engine.Ticket
	}
	var cells []sweepCell
	for _, prof := range benches {
		// One circuit per benchmark, shared by its rows: core jobs solve
		// clones and the virtual-library flow clones internally, so rows
		// never see each other's mutations.
		seq, err := prof.BuildSeq(lib)
		if err != nil {
			return nil, engine.Stats{}, err
		}
		c, scheme, err := prof.CutAndCalibrate(seq)
		if err != nil {
			return nil, engine.Stats{}, err
		}
		opt := core.Options{Scheme: scheme, EDLCost: o.overhead, Method: m}
		if o.gateModel {
			opt.TimingModel = sta.ModelGate
		}
		for _, ap := range approaches {
			tr := obs.New("bench")
			t, err := eng.Submit(obs.WithTracer(ctx, tr), engine.Job{
				Circuit:  c,
				Approach: ap,
				Options:  opt,
				PostSwap: ap.IsVLib(),
			})
			if err != nil {
				return nil, engine.Stats{}, fmt.Errorf("%s/%s: %w", prof.Name, ap, err)
			}
			cells = append(cells, sweepCell{prof: prof, ap: ap, tracer: tr, ticket: t})
		}
	}

	rows := make([]benchRow, 0, len(cells))
	for _, cl := range cells {
		out, err := cl.ticket.Wait(ctx)
		if err != nil {
			return nil, engine.Stats{}, fmt.Errorf("%s/%s: %w", cl.prof.Name, cl.ap, err)
		}
		cl.tracer.Finish()
		rep := cl.tracer.Report()
		sum := out.Summary()
		rows = append(rows, benchRow{
			Bench:         cl.prof.Name,
			Approach:      sum.Approach,
			WallMS:        float64(out.Runtime.Microseconds()) / 1000,
			Pivots:        rep.Sum("flow.simplex", "pivots"),
			Augmentations: rep.Sum("flow.ssp", "augmenting_paths"),
			Solver:        sum.Solver,
			Fallback:      sum.Fallback,
			Slaves:        sum.Slaves,
			Masters:       sum.Masters,
			ED:            sum.ED,
			SeqArea:       sum.SeqArea,
			TotalArea:     sum.TotalArea,
			Cache:         sum.CacheLayer,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Bench != rows[j].Bench {
			return rows[i].Bench < rows[j].Bench
		}
		return rows[i].Approach < rows[j].Approach
	})
	return rows, eng.Stats(), nil
}
