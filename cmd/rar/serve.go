package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"relatch/internal/cluster"
	"relatch/internal/engine"
	"relatch/internal/obs"
	"relatch/internal/queue"
)

// runServe is the -serve mode: a durable job queue pumping an engine,
// fronted by the HTTP job API. POST /jobs journals and admits a
// benchmark or inline Verilog netlist (429 + Retry-After when
// shedding), GET /jobs/{id} polls status with attempt/retry detail,
// GET /jobs/{id}/events streams live stage transitions and solver
// progress as Server-Sent Events, GET /jobs?state=dead inspects the
// dead letter, /healthz is liveness, /readyz readiness, GET /metrics
// the obs counters plus per-stage latency histograms. With -queue-dir
// the journal survives crashes: restarting on the same directory
// recovers every queued and in-flight job. -debug-addr exposes
// net/http/pprof on a second, private listener. SIGINT drains the
// listener gracefully, then the deferred closes stop the pump, queue
// and engine; a clean shutdown exits 0.
//
// With -peers/-node-id the node joins a static cluster: submissions
// for keys another shard owns are forwarded there, local cache misses
// try the owners' disk caches (every fetched blob is revalidated and
// re-certified before use), and dead peers degrade to local compute.
// -auth-file gates the public API behind per-client bearer tokens with
// token-bucket rate limits and admission quotas.
func runServe(ctx context.Context, o options) error {
	cache, err := engine.NewCache(0, o.cacheDir)
	if err != nil {
		return err
	}
	tr := obs.New("serve")
	defer tr.Finish()
	stream := tr.EnableStream(0)
	defer stream.Close()
	logger := obs.NewLogger(os.Stderr, slog.LevelInfo)
	metrics := obs.NewRegistry()
	var node *cluster.Node
	if o.peers != "" {
		specs, err := cluster.ParsePeers(o.peers)
		if err != nil {
			return err
		}
		if o.nodeID == "" {
			return usagef("-peers needs -node-id")
		}
		if node, err = cluster.New(cluster.Config{
			Self:    o.nodeID,
			Peers:   specs,
			Metrics: metrics,
		}); err != nil {
			return err
		}
		cache.SetPeer(node.FetchEntry)
		logger.Info("cluster member", "node", o.nodeID, "peers", node.Members()-1)
	} else if o.nodeID != "" {
		return usagef("-node-id needs -peers")
	}
	var auth *cluster.Auth
	if o.authFile != "" {
		if auth, err = cluster.OpenAuth(o.authFile, metrics); err != nil {
			return err
		}
		logger.Info("auth enabled", "clients", auth.Clients())
	}
	eng := engine.New(engine.Config{
		Workers:    o.jobs,
		Cache:      cache,
		JobTimeout: o.timeout,
		Metrics:    metrics,
	})
	defer eng.Close()
	q, err := queue.Open(queue.Config{
		Dir:         o.queueDir,
		Capacity:    o.queueCap,
		LeaseTTL:    o.leaseTTL,
		MaxAttempts: o.jobRetries,
		Metrics:     metrics,
		Events:      stream,
	})
	if err != nil {
		return err
	}
	defer q.Close()
	d, err := engine.NewDurable(engine.DurableConfig{
		Engine:  eng,
		Queue:   q,
		Tracer:  tr,
		Logger:  logger,
		Metrics: metrics,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	coll, err := engine.NewCollector(engine.CollectorConfig{
		Engine:  eng,
		Queue:   q,
		Metrics: metrics,
	})
	if err != nil {
		return err
	}
	defer coll.Close()
	srv, err := engine.NewServer(engine.ServerConfig{
		Durable:        d,
		Tracer:         tr,
		Metrics:        metrics,
		Logger:         logger,
		RequestTimeout: o.serveTimeout,
		Stream:         stream,
		Cluster:        node,
		Auth:           auth,
	})
	if err != nil {
		return err
	}
	if o.debugAddr != "" {
		stop, err := serveDebug(o.debugAddr, logger)
		if err != nil {
			return err
		}
		defer stop()
	}
	return srv.ListenAndServe(ctx, o.serveAddr)
}

// serveDebug starts the private pprof listener and returns its
// shutdown func. The mux is deliberately separate from the public API
// mux: profiling endpoints never ride the serving address.
func serveDebug(addr string, logger *slog.Logger) (func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rar: debug listener: %w", err)
	}
	logger.Info("pprof debug server", "addr", ln.Addr().String())
	// Buffered so the Serve goroutine can always deposit its exit error
	// even when shutdown already won (relint chandisc bug class).
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	return func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Warn("pprof debug server exit", "err", err)
		}
	}, nil
}
