package main

import (
	"context"
	"log/slog"
	"os"

	"relatch/internal/engine"
	"relatch/internal/obs"
	"relatch/internal/queue"
)

// runServe is the -serve mode: a durable job queue pumping an engine,
// fronted by the HTTP job API. POST /jobs journals and admits a
// benchmark or inline Verilog netlist (429 + Retry-After when
// shedding), GET /jobs/{id} polls status with attempt/retry detail,
// GET /jobs?state=dead inspects the dead letter, /healthz is liveness,
// /readyz readiness, GET /metrics the obs counters. With -queue-dir
// the journal survives crashes: restarting on the same directory
// recovers every queued and in-flight job. SIGINT drains the listener
// gracefully, then the deferred closes stop the pump, queue and
// engine; a clean shutdown exits 0.
func runServe(ctx context.Context, o options) error {
	cache, err := engine.NewCache(0, o.cacheDir)
	if err != nil {
		return err
	}
	tr := obs.New("serve")
	defer tr.Finish()
	logger := obs.NewLogger(os.Stderr, slog.LevelInfo)
	metrics := obs.NewRegistry()
	eng := engine.New(engine.Config{
		Workers:    o.jobs,
		Cache:      cache,
		JobTimeout: o.timeout,
	})
	defer eng.Close()
	q, err := queue.Open(queue.Config{
		Dir:         o.queueDir,
		Capacity:    o.queueCap,
		LeaseTTL:    o.leaseTTL,
		MaxAttempts: o.jobRetries,
		Metrics:     metrics,
	})
	if err != nil {
		return err
	}
	defer q.Close()
	d, err := engine.NewDurable(engine.DurableConfig{
		Engine:  eng,
		Queue:   q,
		Tracer:  tr,
		Logger:  logger,
		Metrics: metrics,
	})
	if err != nil {
		return err
	}
	defer d.Close()
	srv, err := engine.NewServer(engine.ServerConfig{
		Durable:        d,
		Tracer:         tr,
		Metrics:        metrics,
		Logger:         logger,
		RequestTimeout: o.serveTimeout,
	})
	if err != nil {
		return err
	}
	return srv.ListenAndServe(ctx, o.serveAddr)
}
