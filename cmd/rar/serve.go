package main

import (
	"context"
	"log/slog"
	"os"

	"relatch/internal/engine"
	"relatch/internal/obs"
)

// runServe is the -serve mode: an engine fronted by the HTTP job API.
// POST /jobs submits a benchmark or inline Verilog netlist, GET
// /jobs/{id} polls status and result, GET /jobs lists every submission,
// GET /metrics serves the obs counters. SIGINT drains the listener
// gracefully, then the deferred engine close cancels whatever is still
// solving; a clean shutdown exits 0.
func runServe(ctx context.Context, o options) error {
	cache, err := engine.NewCache(0, o.cacheDir)
	if err != nil {
		return err
	}
	tr := obs.New("serve")
	defer tr.Finish()
	eng := engine.New(engine.Config{
		Workers:    o.jobs,
		Cache:      cache,
		JobTimeout: o.timeout,
	})
	defer eng.Close()
	srv, err := engine.NewServer(engine.ServerConfig{
		Engine:         eng,
		Tracer:         tr,
		Logger:         obs.NewLogger(os.Stderr, slog.LevelInfo),
		RequestTimeout: o.serveTimeout,
	})
	if err != nil {
		return err
	}
	return srv.ListenAndServe(ctx, o.serveAddr)
}
