package main

import (
	"context"
	"errors"
	"strings"
	"testing"

	"relatch/internal/engine"
)

func sweepOptions(benches, approaches string, jobs int) options {
	return options{
		benchName: benches,
		approach:  approaches,
		overhead:  1.0,
		method:    "auto",
		jobs:      jobs,
	}
}

// stripWall zeroes the columns that legitimately vary run to run, so the
// rest of the row can be compared exactly.
func stripWall(rows []benchRow) []benchRow {
	out := make([]benchRow, len(rows))
	for i, r := range rows {
		r.WallMS = 0
		r.Cache = ""
		out[i] = r
	}
	return out
}

// TestBenchSweepParallelMatchesSerial is the -bench-json acceptance
// check: -j 8 must produce row-identical output to -j 1 (wall time and
// cache provenance aside).
func TestBenchSweepParallelMatchesSerial(t *testing.T) {
	const benches, approaches = "s1196", "grar,base,nvl"
	serial, _, err := benchSweep(context.Background(), sweepOptions(benches, approaches, 1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := benchSweep(context.Background(), sweepOptions(benches, approaches, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 3 {
		t.Fatalf("rows = %d, want 3", len(serial))
	}
	s, p := stripWall(serial), stripWall(parallel)
	for i := range s {
		if s[i] != p[i] {
			t.Errorf("row %d differs:\n serial   %+v\n parallel %+v", i, s[i], p[i])
		}
	}
	// Rows come out sorted by (bench, approach) regardless of the
	// submission order grar,base,nvl.
	for i := 1; i < len(s); i++ {
		if s[i-1].Bench > s[i].Bench ||
			(s[i-1].Bench == s[i].Bench && s[i-1].Approach >= s[i].Approach) {
			t.Errorf("rows not sorted: %q/%q before %q/%q",
				s[i-1].Bench, s[i-1].Approach, s[i].Bench, s[i].Approach)
		}
	}
	for _, r := range s {
		if r.Slaves <= 0 || r.SeqArea <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
}

// TestBenchSweepCacheHits covers the warm-cache acceptance check: with a
// shared cache dir, the second sweep restores every row (zero solver
// effort) and marks its provenance.
func TestBenchSweepCacheHits(t *testing.T) {
	dir := t.TempDir()
	o := sweepOptions("s1196", "grar,base", 2)
	o.cacheDir = dir

	cold, _, err := benchSweep(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	warm, stats, err := benchSweep(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range warm {
		if r.Cache != "disk" {
			t.Errorf("warm row %d came from %q, want disk", i, r.Cache)
		}
		if r.Pivots != 0 || r.Augmentations != 0 {
			t.Errorf("warm row %d ran the solver: %d pivots, %d augmentations", i, r.Pivots, r.Augmentations)
		}
	}
	if stats.Cache.DiskHits != int64(len(warm)) {
		t.Errorf("disk hits = %d, want %d", stats.Cache.DiskHits, len(warm))
	}
	c, w := stripWall(cold), stripWall(warm)
	for i := range c {
		// Cold rows carry solver provenance the restored rows rederive.
		c[i].Pivots, c[i].Augmentations = 0, 0
		if c[i] != w[i] {
			t.Errorf("warm row %d differs from cold:\n cold %+v\n warm %+v", i, c[i], w[i])
		}
	}
}

func TestBenchListValidation(t *testing.T) {
	cases := []struct {
		benches, approaches string
		wantTok             string
	}{
		{"s1196,s9999", "grar", "s9999"},
		{"s1196,s1196", "grar", "s1196"},
		{"", "grar", "-bench"},
		{",,", "grar", "no benchmarks"},
		{"s1196", "grar,warp", "warp"},
		{"s1196", "grar,grar", "grar"},
		{"s1196", ",,", "no approaches"},
	}
	for _, tc := range cases {
		_, _, err := benchSweep(context.Background(), sweepOptions(tc.benches, tc.approaches, 1))
		if err == nil {
			t.Errorf("bench %q approach %q accepted", tc.benches, tc.approaches)
			continue
		}
		var ue usageError
		if !errors.As(err, &ue) {
			t.Errorf("bench %q approach %q: %v is not a usage error (exit 2)", tc.benches, tc.approaches, err)
		}
		if !strings.Contains(err.Error(), tc.wantTok) {
			t.Errorf("error %q does not name %q", err, tc.wantTok)
		}
	}
	// "all" expands to the whole suite.
	if profs, err := parseBenchList("all"); err != nil || len(profs) < 10 {
		t.Errorf("parseBenchList(all) = %d profiles, %v", len(profs), err)
	}
	if aps, err := parseApproachList("grar,base,nvl,evl,rvl"); err != nil || len(aps) != 5 {
		t.Errorf("full approach list = %v, %v", aps, err)
	} else if aps[0] != engine.GRAR || aps[4] != engine.RVL {
		t.Errorf("approach order mangled: %v", aps)
	}
}
