// Command loadgen is the serving-path SLO harness: it replays N
// synthetic job submissions against one or more live `rar -serve`
// instances at a target open-loop arrival rate, times each request
// end-to-end (submit → terminal status), accounts shed (429) and
// failed requests, and emits one BENCH_serve.json row with achieved
// throughput and p50/p95/p99 latency quantiles.
//
// Open-loop means arrivals are scheduled on a fixed clock regardless of
// how fast the server answers — the standard way to expose queueing
// delay that closed-loop (wait-for-response) generators hide.
//
// -addr accepts a comma-separated target list; submissions round-robin
// across the nodes (each job is polled on the node that accepted it,
// which proxies forwarded jobs to their owner shard), per-node
// accounting prints to stderr, and the row records the cluster mode and
// peer-cache hit ratio. -token authenticates against an -auth-file
// gated deployment. -append merges the row into an existing document
// instead of replacing it.
//
// Exit codes: 0 success, 1 when the run shows an unhealthy server (no
// completed jobs, dead-lettered jobs, transport errors, or uncertified
// results).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"relatch/internal/obs"
)

// serveSchemaVersion identifies the BENCH_serve.json layout. v2 adds
// mode ("single"/"cluster"), the target count and the peer-cache hit
// ratio.
const serveSchemaVersion = 2

// maxSnippet bounds how much of an error response body is kept for the
// error-class accounting.
const maxSnippet = 120

// serveRow is the measurement record of one loadgen run.
type serveRow struct {
	Benches      string  `json:"benches"`
	Approach     string  `json:"approach"`
	Mode         string  `json:"mode"`
	Targets      int     `json:"targets"`
	Jobs         int     `json:"jobs"`
	TargetRate   float64 `json:"target_rate"`
	DurationMS   float64 `json:"duration_ms"`
	AchievedRPS  float64 `json:"achieved_rps"`
	P50MS        float64 `json:"p50_ms"`
	P95MS        float64 `json:"p95_ms"`
	P99MS        float64 `json:"p99_ms"`
	Done         int     `json:"done"`
	Dead         int     `json:"dead"`
	Shed         int     `json:"shed"`
	Errors       int     `json:"errors"`
	Certified    int     `json:"certified"`
	CacheHitRate float64 `json:"cache_hit_ratio"`
	PeerHitRate  float64 `json:"peer_hit_ratio"`
}

// serveDoc is the BENCH_serve.json envelope.
type serveDoc struct {
	SchemaVersion int        `json:"schema_version"`
	Rows          []serveRow `json:"rows"`
}

// jobReply is the subset of the server's job status the generator needs.
type jobReply struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Result *struct {
		Certified  bool   `json:"certified"`
		CacheHit   bool   `json:"cache_hit"`
		CacheLayer string `json:"cache_layer"`
	} `json:"result"`
}

// outcome is one submission's accounting.
type outcome struct {
	target     string
	latency    time.Duration
	done       bool
	dead       bool
	shed       bool
	err        bool
	errClass   string
	certified  bool
	cacheHit   bool
	cacheLayer string
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "comma-separated base URLs of rar -serve instances; submissions round-robin across them")
	n := flag.Int("n", 50, "number of job submissions to replay")
	rate := flag.Float64("rate", 20, "target open-loop arrival rate (submissions/sec)")
	benches := flag.String("bench", "s1196", "comma-separated benchmark names, cycled across submissions")
	approach := flag.String("approach", "grar", "retiming approach for every submission")
	overhead := flag.Float64("c", 1.0, "error-detecting overhead factor")
	poll := flag.Duration("poll", 50*time.Millisecond, "status poll interval for queued jobs")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-submission deadline (submit through terminal status)")
	token := flag.String("token", "", "bearer token for an -auth-file gated deployment (empty = no Authorization header)")
	out := flag.String("out", "", "write the BENCH_serve.json document here (empty = stdout)")
	appendRow := flag.Bool("append", false, "merge the row into an existing -out document instead of replacing it")
	flag.Parse()

	targets := splitList(*addr)
	list := splitList(*benches)
	if *n <= 0 || *rate <= 0 || len(list) == 0 || len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: need -n > 0, -rate > 0, a non-empty -bench list and at least one -addr")
		os.Exit(2)
	}

	row, results, healthy := run(targets, *token, list, *approach, *overhead, *n, *rate, *poll, *jobTimeout)
	doc := serveDoc{SchemaVersion: serveSchemaVersion, Rows: []serveRow{row}}
	if *appendRow && *out != "" {
		if prev, err := os.ReadFile(*out); err == nil {
			var old serveDoc
			if json.Unmarshal(prev, &old) == nil && len(old.Rows) > 0 {
				doc.Rows = append(old.Rows, row)
			}
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
	if *out == "" {
		os.Stdout.Write(buf.Bytes())
	} else if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d jobs @ %.1f/s target across %d node(s): %.1f/s achieved, p50 %.1fms p95 %.1fms p99 %.1fms, done=%d dead=%d shed=%d errors=%d certified=%d peer_hits=%.0f%%\n",
		row.Jobs, row.TargetRate, row.Targets, row.AchievedRPS, row.P50MS, row.P95MS, row.P99MS,
		row.Done, row.Dead, row.Shed, row.Errors, row.Certified, row.PeerHitRate*100)
	printPerNode(results)
	printErrorClasses(results)
	if !healthy {
		fmt.Fprintln(os.Stderr, "loadgen: run unhealthy (no completions, deaths, errors, or uncertified results)")
		os.Exit(1)
	}
}

// printPerNode breaks the accounting down by target node.
func printPerNode(results []outcome) {
	type acc struct{ done, shed, errs, peer int }
	byNode := map[string]*acc{}
	var order []string
	for _, r := range results {
		a, ok := byNode[r.target]
		if !ok {
			a = &acc{}
			byNode[r.target] = a
			order = append(order, r.target)
		}
		switch {
		case r.err:
			a.errs++
		case r.shed:
			a.shed++
		case r.done:
			a.done++
			if r.cacheLayer == "peer" {
				a.peer++
			}
		}
	}
	if len(order) < 2 {
		return
	}
	sort.Strings(order)
	for _, t := range order {
		a := byNode[t]
		fmt.Fprintf(os.Stderr, "loadgen:   %s: done=%d shed=%d errors=%d peer_hits=%d\n",
			t, a.done, a.shed, a.errs, a.peer)
	}
}

// printErrorClasses summarizes what the failed requests actually said.
func printErrorClasses(results []outcome) {
	counts := map[string]int{}
	for _, r := range results {
		if r.err && r.errClass != "" {
			counts[r.errClass]++
		}
	}
	classes := make([]string, 0, len(counts))
	for c := range counts {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Fprintf(os.Stderr, "loadgen:   error %dx %s\n", counts[c], c)
	}
}

// run fires the open-loop schedule and aggregates the outcomes.
func run(targets []string, token string, benches []string, approach string, overhead float64, n int, rate float64, poll, jobTimeout time.Duration) (serveRow, []outcome, bool) {
	client := &http.Client{Timeout: 30 * time.Second}
	interval := time.Duration(float64(time.Second) / rate)
	results := make([]outcome, n)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		// Open-loop: sleep until this submission's scheduled slot, then
		// fire regardless of in-flight work.
		time.Sleep(time.Until(start.Add(time.Duration(i) * interval)))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			target := targets[i%len(targets)]
			results[i] = submit(client, target, token, benches[i%len(benches)], approach, overhead, poll, jobTimeout)
			results[i].target = target
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// The quantile estimator is the same log-bucket histogram the server
	// uses, so client- and server-side percentiles are comparable.
	h := obs.NewHistogram("loadgen_request_seconds", obs.DefaultLatencyBuckets())
	mode := "single"
	if len(targets) > 1 {
		mode = "cluster"
	}
	row := serveRow{
		Benches:    strings.Join(benches, ","),
		Approach:   approach,
		Mode:       mode,
		Targets:    len(targets),
		Jobs:       n,
		TargetRate: rate,
		DurationMS: float64(elapsed.Microseconds()) / 1000,
	}
	completed := 0
	cacheHits := 0
	peerHits := 0
	for _, r := range results {
		switch {
		case r.err:
			row.Errors++
		case r.shed:
			row.Shed++
		case r.dead:
			row.Dead++
		case r.done:
			row.Done++
			h.Observe(r.latency)
			completed++
			if r.certified {
				row.Certified++
			}
			if r.cacheHit {
				cacheHits++
			}
			if r.cacheLayer == "peer" {
				peerHits++
			}
		}
	}
	if elapsed > 0 {
		row.AchievedRPS = float64(completed) / elapsed.Seconds()
	}
	if completed > 0 {
		row.P50MS = float64(h.Quantile(0.50).Microseconds()) / 1000
		row.P95MS = float64(h.Quantile(0.95).Microseconds()) / 1000
		row.P99MS = float64(h.Quantile(0.99).Microseconds()) / 1000
		row.CacheHitRate = float64(cacheHits) / float64(completed)
		row.PeerHitRate = float64(peerHits) / float64(completed)
	}
	healthy := row.Done > 0 && row.Dead == 0 && row.Errors == 0 && row.Certified == row.Done
	return row, results, healthy
}

// submit posts one job and follows it to a terminal state.
func submit(client *http.Client, addr, token, bench, approach string, overhead float64, poll, jobTimeout time.Duration) outcome {
	deadline := time.Now().Add(jobTimeout)
	body, _ := json.Marshal(map[string]any{"bench": bench, "approach": approach, "c": overhead})
	start := time.Now()
	resp, err := doJSON(client, token, http.MethodPost, addr+"/jobs", body)
	if err != nil {
		return outcome{err: true, errClass: "transport: " + trim(err.Error())}
	}
	reply, code, snippet := decodeReply(resp)
	switch code {
	case http.StatusOK:
		// Degraded-mode synchronous cache answer: the RTT is the latency.
		return outcome{latency: time.Since(start), done: true,
			certified: reply.Result != nil && reply.Result.Certified, cacheHit: true,
			cacheLayer: cacheLayerOf(reply)}
	case http.StatusTooManyRequests:
		return outcome{shed: true}
	case http.StatusAccepted:
	default:
		return outcome{err: true, errClass: errorReason(code, snippet)}
	}
	for time.Now().Before(deadline) {
		time.Sleep(poll)
		resp, err := doJSON(client, token, http.MethodGet, addr+"/jobs/"+reply.ID, nil)
		if err != nil {
			return outcome{err: true, errClass: "transport: " + trim(err.Error())}
		}
		st, code, snippet := decodeReply(resp)
		if code != http.StatusOK {
			return outcome{err: true, errClass: errorReason(code, snippet)}
		}
		switch st.Status {
		case "done":
			return outcome{latency: time.Since(start), done: true,
				certified:  st.Result != nil && st.Result.Certified,
				cacheHit:   st.Result != nil && st.Result.CacheHit,
				cacheLayer: cacheLayerOf(st)}
		case "dead":
			return outcome{dead: true}
		}
	}
	return outcome{err: true, errClass: "timeout: job not terminal within deadline"}
}

// doJSON sends one request with the JSON content negotiation and
// authorization headers every exchange needs.
func doJSON(client *http.Client, token, method, url string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "application/json")
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	return client.Do(req)
}

func cacheLayerOf(r jobReply) string {
	if r.Result == nil {
		return ""
	}
	return r.Result.CacheLayer
}

// decodeReply drains a job API response, returning the decoded reply,
// the status code and a body snippet for error classification.
func decodeReply(resp *http.Response) (jobReply, int, string) {
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	io.Copy(io.Discard, resp.Body)
	var r jobReply
	json.Unmarshal(raw, &r)
	return r, resp.StatusCode, bodySnippet(raw)
}

// errorReason labels a failed exchange for the error-class accounting:
// the status code plus whatever the server actually said, so a 401
// ("unauthorized") reads differently from a 400 ("unknown benchmark")
// instead of both vanishing into one errors counter.
func errorReason(code int, snippet string) string {
	reason := fmt.Sprintf("http_%d", code)
	if snippet != "" {
		reason += ": " + snippet
	}
	return reason
}

// bodySnippet compresses an error response body to one short line: the
// JSON "error" field when present (the API's error shape), otherwise
// the whitespace-collapsed raw text, truncated to maxSnippet.
func bodySnippet(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return trim(e.Error)
	}
	return trim(string(raw))
}

// trim collapses whitespace runs and truncates to maxSnippet.
func trim(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > maxSnippet {
		s = s[:maxSnippet] + "..."
	}
	return s
}

// splitList parses a comma-separated list, dropping empty tokens.
func splitList(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}
