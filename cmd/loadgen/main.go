// Command loadgen is the serving-path SLO harness: it replays N
// synthetic job submissions against a live `rar -serve` instance at a
// target open-loop arrival rate, times each request end-to-end
// (submit → terminal status), accounts shed (429) and failed requests,
// and emits one BENCH_serve.json row with achieved throughput and
// p50/p95/p99 latency quantiles.
//
// Open-loop means arrivals are scheduled on a fixed clock regardless of
// how fast the server answers — the standard way to expose queueing
// delay that closed-loop (wait-for-response) generators hide.
//
// Exit codes: 0 success, 1 when the run shows an unhealthy server (no
// completed jobs, dead-lettered jobs, transport errors, or uncertified
// results).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"relatch/internal/obs"
)

// serveSchemaVersion identifies the BENCH_serve.json layout.
const serveSchemaVersion = 1

// serveRow is the measurement record of one loadgen run.
type serveRow struct {
	Benches      string  `json:"benches"`
	Approach     string  `json:"approach"`
	Jobs         int     `json:"jobs"`
	TargetRate   float64 `json:"target_rate"`
	DurationMS   float64 `json:"duration_ms"`
	AchievedRPS  float64 `json:"achieved_rps"`
	P50MS        float64 `json:"p50_ms"`
	P95MS        float64 `json:"p95_ms"`
	P99MS        float64 `json:"p99_ms"`
	Done         int     `json:"done"`
	Dead         int     `json:"dead"`
	Shed         int     `json:"shed"`
	Errors       int     `json:"errors"`
	Certified    int     `json:"certified"`
	CacheHitRate float64 `json:"cache_hit_ratio"`
}

// serveDoc is the BENCH_serve.json envelope.
type serveDoc struct {
	SchemaVersion int        `json:"schema_version"`
	Rows          []serveRow `json:"rows"`
}

// jobReply is the subset of the server's job status the generator needs.
type jobReply struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Result *struct {
		Certified bool `json:"certified"`
		CacheHit  bool `json:"cache_hit"`
	} `json:"result"`
}

// outcome is one submission's accounting.
type outcome struct {
	latency   time.Duration
	done      bool
	dead      bool
	shed      bool
	err       bool
	certified bool
	cacheHit  bool
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of the rar -serve instance")
	n := flag.Int("n", 50, "number of job submissions to replay")
	rate := flag.Float64("rate", 20, "target open-loop arrival rate (submissions/sec)")
	benches := flag.String("bench", "s1196", "comma-separated benchmark names, cycled across submissions")
	approach := flag.String("approach", "grar", "retiming approach for every submission")
	overhead := flag.Float64("c", 1.0, "error-detecting overhead factor")
	poll := flag.Duration("poll", 50*time.Millisecond, "status poll interval for queued jobs")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-submission deadline (submit through terminal status)")
	out := flag.String("out", "", "write the BENCH_serve.json document here (empty = stdout)")
	flag.Parse()

	list := splitList(*benches)
	if *n <= 0 || *rate <= 0 || len(list) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: need -n > 0, -rate > 0 and a non-empty -bench list")
		os.Exit(2)
	}

	row, healthy := run(*addr, list, *approach, *overhead, *n, *rate, *poll, *jobTimeout)
	doc := serveDoc{SchemaVersion: serveSchemaVersion, Rows: []serveRow{row}}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
	if *out == "" {
		os.Stdout.Write(buf.Bytes())
	} else if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d jobs @ %.1f/s target: %.1f/s achieved, p50 %.1fms p95 %.1fms p99 %.1fms, done=%d dead=%d shed=%d errors=%d certified=%d\n",
		row.Jobs, row.TargetRate, row.AchievedRPS, row.P50MS, row.P95MS, row.P99MS,
		row.Done, row.Dead, row.Shed, row.Errors, row.Certified)
	if !healthy {
		fmt.Fprintln(os.Stderr, "loadgen: run unhealthy (no completions, deaths, errors, or uncertified results)")
		os.Exit(1)
	}
}

// run fires the open-loop schedule and aggregates the outcomes.
func run(addr string, benches []string, approach string, overhead float64, n int, rate float64, poll, jobTimeout time.Duration) (serveRow, bool) {
	client := &http.Client{Timeout: 30 * time.Second}
	interval := time.Duration(float64(time.Second) / rate)
	results := make([]outcome, n)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		// Open-loop: sleep until this submission's scheduled slot, then
		// fire regardless of in-flight work.
		time.Sleep(time.Until(start.Add(time.Duration(i) * interval)))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = submit(client, addr, benches[i%len(benches)], approach, overhead, poll, jobTimeout)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// The quantile estimator is the same log-bucket histogram the server
	// uses, so client- and server-side percentiles are comparable.
	h := obs.NewHistogram("loadgen_request_seconds", obs.DefaultLatencyBuckets())
	row := serveRow{
		Benches:    strings.Join(benches, ","),
		Approach:   approach,
		Jobs:       n,
		TargetRate: rate,
		DurationMS: float64(elapsed.Microseconds()) / 1000,
	}
	completed := 0
	cacheHits := 0
	for _, r := range results {
		switch {
		case r.err:
			row.Errors++
		case r.shed:
			row.Shed++
		case r.dead:
			row.Dead++
		case r.done:
			row.Done++
			h.Observe(r.latency)
			completed++
			if r.certified {
				row.Certified++
			}
			if r.cacheHit {
				cacheHits++
			}
		}
	}
	if elapsed > 0 {
		row.AchievedRPS = float64(completed) / elapsed.Seconds()
	}
	if completed > 0 {
		row.P50MS = float64(h.Quantile(0.50).Microseconds()) / 1000
		row.P95MS = float64(h.Quantile(0.95).Microseconds()) / 1000
		row.P99MS = float64(h.Quantile(0.99).Microseconds()) / 1000
		row.CacheHitRate = float64(cacheHits) / float64(completed)
	}
	healthy := row.Done > 0 && row.Dead == 0 && row.Errors == 0 && row.Certified == row.Done
	return row, healthy
}

// submit posts one job and follows it to a terminal state.
func submit(client *http.Client, addr, bench, approach string, overhead float64, poll, jobTimeout time.Duration) outcome {
	deadline := time.Now().Add(jobTimeout)
	body, _ := json.Marshal(map[string]any{"bench": bench, "approach": approach, "c": overhead})
	start := time.Now()
	resp, err := client.Post(addr+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return outcome{err: true}
	}
	reply, code := decodeReply(resp)
	switch code {
	case http.StatusOK:
		// Degraded-mode synchronous cache answer: the RTT is the latency.
		return outcome{latency: time.Since(start), done: true,
			certified: reply.Result != nil && reply.Result.Certified, cacheHit: true}
	case http.StatusTooManyRequests:
		return outcome{shed: true}
	case http.StatusAccepted:
	default:
		return outcome{err: true}
	}
	for time.Now().Before(deadline) {
		time.Sleep(poll)
		resp, err := client.Get(addr + "/jobs/" + reply.ID)
		if err != nil {
			return outcome{err: true}
		}
		st, code := decodeReply(resp)
		if code != http.StatusOK {
			return outcome{err: true}
		}
		switch st.Status {
		case "done":
			return outcome{latency: time.Since(start), done: true,
				certified: st.Result != nil && st.Result.Certified,
				cacheHit:  st.Result != nil && st.Result.CacheHit}
		case "dead":
			return outcome{dead: true}
		}
	}
	return outcome{err: true}
}

// decodeReply drains and decodes a job API response.
func decodeReply(resp *http.Response) (jobReply, int) {
	defer resp.Body.Close()
	var r jobReply
	json.NewDecoder(resp.Body).Decode(&r)
	io.Copy(io.Discard, resp.Body)
	return r, resp.StatusCode
}

// splitList parses a comma-separated list, dropping empty tokens.
func splitList(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}
