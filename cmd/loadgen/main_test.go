package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestErrorClassification covers how non-2xx answers turn into
// error-class labels: the JSON error field is preferred, raw bodies are
// collapsed and truncated, and the status code always leads.
func TestErrorClassification(t *testing.T) {
	cases := []struct {
		name string
		code int
		body string
		want string
	}{
		{"json error field", 401, `{"error":"unknown bearer token"}`,
			"http_401: unknown bearer token"},
		{"plain text body", 400, "unknown benchmark \"nope\"\n",
			`http_400: unknown benchmark "nope"`},
		{"whitespace collapsed", 500, "engine:\n\t  solver   exploded",
			"http_500: engine: solver exploded"},
		{"empty body", 404, "", "http_404"},
		{"long body truncated", 503, strings.Repeat("x", 500),
			"http_503: " + strings.Repeat("x", maxSnippet) + "..."},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := errorReason(tc.code, bodySnippet([]byte(tc.body)))
			if got != tc.want {
				t.Errorf("errorReason(%d, %q) = %q, want %q", tc.code, tc.body, got, tc.want)
			}
		})
	}
}

// TestSubmitSurfacesErrorBody drives submit against a stub server and
// checks the non-2xx body lands in the outcome's error class.
func TestSubmitSurfacesErrorBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Accept") != "application/json" {
			t.Errorf("submit sent Accept %q, want application/json", r.Header.Get("Accept"))
		}
		if r.Header.Get("Authorization") != "Bearer tok-1" {
			t.Errorf("submit sent Authorization %q, want bearer token", r.Header.Get("Authorization"))
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnauthorized)
		io.WriteString(w, `{"error":"quota exhausted for client ci"}`)
	}))
	defer ts.Close()

	out := submit(ts.Client(), ts.URL, "tok-1", "s1196", "grar", 1.0, 0, 0)
	if !out.err {
		t.Fatalf("outcome = %+v, want an error", out)
	}
	if out.errClass != "http_401: quota exhausted for client ci" {
		t.Errorf("errClass = %q, want the 401 body surfaced", out.errClass)
	}
}

// TestSubmitShedIsNotAnError keeps 429 accounted as shed, not failure.
func TestSubmitShedIsNotAnError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	out := submit(ts.Client(), ts.URL, "", "s1196", "grar", 1.0, 0, 0)
	if out.err || !out.shed {
		t.Fatalf("outcome = %+v, want shed without error", out)
	}
}
