// Command paper regenerates every table of the paper's evaluation
// (Tables I–IX of "Retiming of Two-Phase Latch-Based Resilient
// Circuits") on the benchmark suite and prints them in text, Markdown or
// CSV form.
//
// Usage:
//
//	paper [-benchmarks s1196,s1423,...] [-overheads 0.5,1,2]
//	      [-tables 1,2,...] [-cycles N] [-format text|md|csv] [-quiet]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"relatch/internal/experiments"
	"relatch/internal/report"
)

func main() {
	benchmarks := flag.String("benchmarks", "", "comma-separated benchmark names (default: all twelve)")
	overheads := flag.String("overheads", "", "comma-separated EDL overheads c (default: 0.5,1,2)")
	tables := flag.String("tables", "", "comma-separated table numbers 1-9 (default: all, plus the summary)")
	cycles := flag.Int("cycles", 1000, "error-rate simulation cycles (scaled down on large circuits)")
	format := flag.String("format", "text", "output format: text, md or csv")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	cfg := experiments.Config{SimCycles: *cycles}
	if *benchmarks != "" {
		cfg.Profiles = strings.Split(*benchmarks, ",")
	}
	if *overheads != "" {
		for _, s := range strings.Split(*overheads, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fatalf("bad overhead %q: %v", s, err)
			}
			cfg.Overheads = append(cfg.Overheads, v)
		}
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	suite, err := experiments.Run(cfg)
	if err != nil {
		fatalf("%v", err)
	}

	want := map[int]bool{}
	if *tables != "" {
		for _, s := range strings.Split(*tables, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 || n > 9 {
				fatalf("bad table number %q", s)
			}
			want[n] = true
		}
	}

	out := os.Stdout
	for i, t := range suite.AllTables() {
		if len(want) > 0 && !want[i+1] {
			continue
		}
		emit(out, t, *format)
	}
	if len(want) == 0 {
		emit(out, suite.AblationSizingReclaim(), *format)
		emit(out, suite.Summary(), *format)
	}
}

func emit(w io.Writer, t *report.Table, format string) {
	switch format {
	case "md":
		fmt.Fprintln(w, t.Markdown())
	case "csv":
		fmt.Fprintf(w, "# %s\n%s\n", t.Title, t.CSV())
	default:
		fmt.Fprintln(w, t.String())
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "paper: "+format+"\n", args...)
	os.Exit(1)
}
