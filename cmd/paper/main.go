// Command paper regenerates every table of the paper's evaluation
// (Tables I–IX of "Retiming of Two-Phase Latch-Based Resilient
// Circuits") on the benchmark suite and prints them in text, Markdown or
// CSV form.
//
// Usage:
//
//	paper [-benchmarks s1196,s1423,...] [-overheads 0.5,1,2]
//	      [-tables 1,2,...] [-cycles N] [-format text|md|csv] [-quiet]
//	      [-method auto|simplex|ssp] [-timeout 10m]
//	      [-j N] [-cache-dir DIR]
//	      [-trace] [-trace-json] [-trace-chrome out.json] [-metrics]
//
// -j runs up to N benchmarks concurrently through the retiming job
// engine (results are identical at any N); -cache-dir adds an on-disk
// result cache so re-runs skip already-solved (circuit, options) pairs.
//
// The trace flags observe the whole sweep: -trace prints the span tree
// (one experiments.circuit span per benchmark, retiming stages below it)
// to stderr, -trace-json the same as JSON, -metrics a Prometheus-style
// dump, and -trace-chrome writes a chrome://tracing-loadable file. The
// tables on stdout are unaffected.
//
// Exit codes: 0 success, 1 runtime error, 2 usage error, 3 timeout or
// interrupt.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"relatch/internal/experiments"
	"relatch/internal/flow"
	"relatch/internal/obs"
	"relatch/internal/report"
)

func main() {
	benchmarks := flag.String("benchmarks", "", "comma-separated benchmark names (default: all twelve)")
	overheads := flag.String("overheads", "", "comma-separated EDL overheads c (default: 0.5,1,2)")
	tables := flag.String("tables", "", "comma-separated table numbers 1-9 (default: all, plus the summary)")
	cycles := flag.Int("cycles", 1000, "error-rate simulation cycles (scaled down on large circuits)")
	format := flag.String("format", "text", "output format: text, md or csv")
	method := flag.String("method", "auto", "flow solver: auto (simplex with certified ssp fallback), simplex or ssp")
	timeout := flag.Duration("timeout", 0, "abort the sweep after this duration (0 = none)")
	jobs := flag.Int("j", 1, "run up to N benchmarks concurrently (results are identical at any N)")
	cacheDir := flag.String("cache-dir", "", "persist retiming results to this directory and reuse them on later runs")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	trace := flag.Bool("trace", false, "print the sweep's span tree (per-benchmark stages, solver counters) to stderr")
	traceJSON := flag.Bool("trace-json", false, "print the span tree as JSON to stderr")
	traceChrome := flag.String("trace-chrome", "", "write the trace in Chrome trace-event format to this file")
	metrics := flag.Bool("metrics", false, "print Prometheus-style metrics for the sweep to stderr")
	flag.Parse()

	cfg := experiments.Config{SimCycles: *cycles, Parallelism: *jobs, CacheDir: *cacheDir}
	if *benchmarks != "" {
		cfg.Profiles = strings.Split(*benchmarks, ",")
	}
	if *overheads != "" {
		for _, s := range strings.Split(*overheads, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				usagef("bad overhead %q: %v", s, err)
			}
			cfg.Overheads = append(cfg.Overheads, v)
		}
	}
	m, err := flow.ParseMethod(*method)
	if err != nil {
		usagef("%v", err)
	}
	cfg.Method = m
	if !*quiet {
		cfg.Logger = obs.NewLogger(os.Stderr, slog.LevelInfo)
	}

	want := map[int]bool{}
	if *tables != "" {
		for _, s := range strings.Split(*tables, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 || n > 9 {
				usagef("bad table number %q", s)
			}
			want[n] = true
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var tr *obs.Tracer
	if *trace || *traceJSON || *traceChrome != "" || *metrics {
		tr = obs.New("paper")
		ctx = obs.WithTracer(ctx, tr)
	}
	export := func() {
		if tr == nil {
			return
		}
		tr.Finish()
		rep := tr.Report()
		if *trace {
			rep.WriteText(os.Stderr)
		}
		if *traceJSON {
			if err := rep.WriteJSON(os.Stderr); err != nil {
				fmt.Fprintf(os.Stderr, "paper: trace-json: %v\n", err)
			}
		}
		if *metrics {
			rep.WriteMetrics(os.Stderr)
		}
		if *traceChrome != "" {
			if err := writeChrome(rep, *traceChrome); err != nil {
				fmt.Fprintf(os.Stderr, "paper: trace-chrome: %v\n", err)
			}
		}
	}

	suite, err := experiments.RunCtx(ctx, cfg)
	export()
	if err != nil {
		fmt.Fprintf(os.Stderr, "paper: %v\n", err)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			os.Exit(3)
		}
		os.Exit(1)
	}

	out := os.Stdout
	for i, t := range suite.AllTables() {
		if len(want) > 0 && !want[i+1] {
			continue
		}
		emit(out, t, *format)
	}
	if len(want) == 0 {
		emit(out, suite.AblationSizingReclaim(), *format)
		emit(out, suite.Summary(), *format)
	}
}

func emit(w io.Writer, t *report.Table, format string) {
	switch format {
	case "md":
		fmt.Fprintln(w, t.Markdown())
	case "csv":
		fmt.Fprintf(w, "# %s\n%s\n", t.Title, t.CSV())
	default:
		fmt.Fprintln(w, t.String())
	}
}

func usagef(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "paper: "+format+"\n", args...)
	os.Exit(2)
}

// writeChrome writes the Chrome trace-event export to the named file.
func writeChrome(rep *obs.Report, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
