// Command relint runs the internal/analysis rule catalogue over the
// repo's Go sources: the determinism and convention invariants that
// past PRs established the hard way (map-iteration determinism from
// PR 5, journal-first durability, sentinel error discipline, hot-loop
// allocation hygiene, span/context plumbing) plus the concurrency
// suite from PR 8 (guarded-by fields, lock ordering, goroutine
// lifecycle, channel ownership, atomic/plain mixing). It is the
// source-code member of the repo's checker family — internal/lint
// gates the netlists the pipeline consumes, internal/cert gates the
// results it produces, relint gates the implementation in between.
//
// Usage:
//
//	relint [flags] [root ...]
//
// Roots default to "."; the go tool spelling "./..." is accepted and
// equivalent. Flags:
//
//	-rules r1,r2  run only the named rules (default: full catalogue)
//	-allow FILE   hotalloc allowlist (default internal/analysis/hotalloc.allow)
//	-json         emit findings as a JSON array instead of text
//	-list         print the rule catalogue and exit
//
// Findings print one per line in the internal/lint diagnostic format
// (file:line:col: error: message [rule]). Suppress a finding with
//
//	//relint:ignore <rule> -- <reason>
//
// on or above the offending line, or in the function's doc comment to
// cover the whole function. Exit codes: 0 clean, 1 findings, 2
// usage/load errors — the same contract as the build/analyzers tool
// this command replaces. On failure the summary breaks the total down
// per rule, so a CI log shows at a glance which invariant regressed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"relatch/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("relint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rulesFlag = fs.String("rules", "", "comma-separated rule IDs to run (default: all)")
		allowFlag = fs.String("allow", "internal/analysis/hotalloc.allow", "hotalloc allowlist file")
		jsonFlag  = fs.Bool("json", false, "emit findings as JSON")
		listFlag  = fs.Bool("list", false, "print the rule catalogue and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: relint [flags] [root ...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *listFlag {
		for _, r := range analysis.Catalogue() {
			fmt.Fprintf(stdout, "%-12s %s\n", r.ID, r.Doc)
		}
		return 0
	}
	rules, err := analysis.Select(*rulesFlag)
	if err != nil {
		fmt.Fprintf(stderr, "relint: %v\n", err)
		return 2
	}
	allow, err := analysis.LoadHotAllow(*allowFlag)
	if err != nil {
		fmt.Fprintf(stderr, "relint: %v\n", err)
		return 2
	}
	cfg := analysis.Config{HotAllow: allow}

	roots := fs.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var findings []analysis.Diagnostic
	for _, root := range roots {
		tree, err := analysis.Load(root, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "relint: %v\n", err)
			return 2
		}
		// Type errors degrade rules to syntactic coverage; surface them
		// without failing, so a stale importer cache can't block CI on a
		// false positive.
		for _, terr := range tree.TypeErrors {
			fmt.Fprintf(stderr, "relint: type info incomplete: %v\n", terr)
		}
		findings = append(findings, tree.Run(rules)...)
	}

	if *jsonFlag {
		if err := analysis.WriteJSON(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "relint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range findings {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "relint: %d finding(s)%s\n", len(findings), perRuleSummary(findings))
		return 1
	}
	return 0
}

// perRuleSummary renders " (rule: n, rule: n, ...)" sorted by rule ID,
// so a failing CI run shows which invariants regressed without
// scrolling the finding list.
func perRuleSummary(findings []analysis.Diagnostic) string {
	counts := map[string]int{}
	for _, d := range findings {
		counts[d.Rule]++
	}
	ids := make([]string, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	s := " ("
	for i, id := range ids {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s: %d", id, counts[id])
	}
	return s + ")"
}
