package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relatch/internal/analysis"
)

// writeTree lays out a throwaway module with the given files and
// chdirs into it for the test's duration (Load resolves roots
// relative to the working directory).
func writeTree(t *testing.T, files map[string]string) {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })
}

const cleanSrc = `package clean

// Answer is the canonical constant.
const Answer = 42
`

// dirtySrc trips barepanic (a bare panic outside tests and Must*
// constructors) and maporder (append under map range) — two rules,
// three findings, exercising the per-rule summary.
const dirtySrc = `package dirty

func Explode() {
	panic("boom")
}

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func Vals(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
`

func runRelint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCLICleanTreeExitsZero(t *testing.T) {
	writeTree(t, map[string]string{"clean/clean.go": cleanSrc})
	code, stdout, stderr := runRelint(t, "./...")
	if code != 0 {
		t.Fatalf("exit %d on clean tree; stderr: %s", code, stderr)
	}
	if stdout != "" {
		t.Errorf("clean tree printed findings: %q", stdout)
	}
}

func TestCLIFindingsExitOneWithPerRuleCounts(t *testing.T) {
	writeTree(t, map[string]string{"dirty/dirty.go": dirtySrc})
	code, stdout, stderr := runRelint(t, "./...")
	if code != 1 {
		t.Fatalf("exit %d on dirty tree (want 1); stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "[barepanic]") || !strings.Contains(stdout, "[maporder]") {
		t.Errorf("findings missing expected rules:\n%s", stdout)
	}
	// The failure summary must break the total down per rule, sorted.
	if !strings.Contains(stderr, "(barepanic: 1, maporder: 2)") {
		t.Errorf("stderr summary lacks per-rule counts: %q", stderr)
	}
}

func TestCLIBadFlagAndUnknownRuleExitTwo(t *testing.T) {
	writeTree(t, map[string]string{"clean/clean.go": cleanSrc})
	if code, _, _ := runRelint(t, "-no-such-flag"); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	code, _, stderr := runRelint(t, "-rules", "nosuchrule", "./...")
	if code != 2 {
		t.Errorf("unknown rule: exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "nosuchrule") {
		t.Errorf("unknown-rule error does not name the rule: %q", stderr)
	}
}

func TestCLIJSONDecodes(t *testing.T) {
	writeTree(t, map[string]string{"dirty/dirty.go": dirtySrc})
	code, stdout, _ := runRelint(t, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var ds []analysis.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &ds); err != nil {
		t.Fatalf("-json output does not decode: %v\n%s", err, stdout)
	}
	if len(ds) != 3 {
		t.Errorf("decoded %d findings, want 3: %+v", len(ds), ds)
	}
	for _, d := range ds {
		if d.File == "" || d.Line == 0 || d.Rule == "" || d.Message == "" {
			t.Errorf("finding with empty field: %+v", d)
		}
	}
}

func TestCLIRulesFlagFilters(t *testing.T) {
	writeTree(t, map[string]string{"dirty/dirty.go": dirtySrc, "clean/clean.go": cleanSrc})
	code, stdout, stderr := runRelint(t, "-rules", "maporder", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr)
	}
	if strings.Contains(stdout, "[barepanic]") {
		t.Errorf("-rules maporder still ran barepanic:\n%s", stdout)
	}
	if strings.Count(stdout, "[maporder]") != 2 {
		t.Errorf("want 2 maporder findings:\n%s", stdout)
	}
	// Filtering to a rule the tree satisfies must exit clean.
	if code, _, _ := runRelint(t, "-rules", "barepanic", "clean", "./dirty"); code != 1 {
		t.Errorf("multi-root run: exit %d, want 1", code)
	}
}

func TestCLIListNamesEveryRule(t *testing.T) {
	code, stdout, _ := runRelint(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, r := range analysis.Catalogue() {
		if !strings.Contains(stdout, r.ID) {
			t.Errorf("-list output missing rule %q", r.ID)
		}
	}
	if n := len(strings.Split(strings.TrimSpace(stdout), "\n")); n != len(analysis.Catalogue()) {
		t.Errorf("-list printed %d lines, catalogue has %d rules", n, len(analysis.Catalogue()))
	}
}
