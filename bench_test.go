package relatch

import (
	"context"
	"math/rand"
	"testing"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/core"
	"relatch/internal/experiments"
	"relatch/internal/flow"
	"relatch/internal/netlist"
	"relatch/internal/obs"
	"relatch/internal/sim"
	"relatch/internal/sta"
	"relatch/internal/vlib"
)

// benchSuite runs the experiment pipeline for the given table on a small
// benchmark subset (the full sweep is cmd/paper; these benches track the
// cost of regenerating each table's data).
func benchSuite(b *testing.B, cfg experiments.Config, render func(*experiments.Suite) string) {
	b.Helper()
	if cfg.Profiles == nil {
		cfg.Profiles = []string{"s1196", "s1488"}
	}
	if cfg.Overheads == nil {
		cfg.Overheads = []float64{1.0}
	}
	if cfg.SimCycles == 0 {
		cfg.SimCycles = 200
	}
	if cfg.MovableTrials == 0 {
		cfg.MovableTrials = 6
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := experiments.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if render(s) == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableI regenerates the circuit-information table.
func BenchmarkTableI(b *testing.B) {
	benchSuite(b, experiments.Config{}, func(s *experiments.Suite) string { return s.TableI().String() })
}

// BenchmarkTableII regenerates the gate-vs-path delay model comparison.
func BenchmarkTableII(b *testing.B) {
	benchSuite(b, experiments.Config{}, func(s *experiments.Suite) string { return s.TableII().String() })
}

// BenchmarkTableIII regenerates the virtual-library variant comparison.
func BenchmarkTableIII(b *testing.B) {
	benchSuite(b, experiments.Config{}, func(s *experiments.Suite) string { return s.TableIII().String() })
}

// BenchmarkTableIV regenerates the sequential-area comparison.
func BenchmarkTableIV(b *testing.B) {
	benchSuite(b, experiments.Config{}, func(s *experiments.Suite) string { return s.TableIV().String() })
}

// BenchmarkTableV regenerates the total-area comparison.
func BenchmarkTableV(b *testing.B) {
	benchSuite(b, experiments.Config{}, func(s *experiments.Suite) string { return s.TableV().String() })
}

// BenchmarkTableVI regenerates the latch-count comparison.
func BenchmarkTableVI(b *testing.B) {
	benchSuite(b, experiments.Config{}, func(s *experiments.Suite) string { return s.TableVI().String() })
}

// BenchmarkTableVII regenerates the run-time comparison.
func BenchmarkTableVII(b *testing.B) {
	benchSuite(b, experiments.Config{}, func(s *experiments.Suite) string { return s.TableVII().String() })
}

// BenchmarkTableVIII regenerates the error-rate comparison.
func BenchmarkTableVIII(b *testing.B) {
	benchSuite(b, experiments.Config{}, func(s *experiments.Suite) string { return s.TableVIII().String() })
}

// BenchmarkTableIX regenerates the fixed- vs movable-master comparison.
func BenchmarkTableIX(b *testing.B) {
	benchSuite(b, experiments.Config{}, func(s *experiments.Suite) string { return s.TableIX().String() })
}

// --- component micro-benchmarks ---

func mediumCircuit(b *testing.B) (*netlist.Circuit, core.Options) {
	b.Helper()
	lib := cell.Default(1.0)
	prof, _ := bench.ProfileByName("s5378")
	c, scheme, err := prof.Build(lib)
	if err != nil {
		b.Fatal(err)
	}
	return c, core.Options{Scheme: scheme, EDLCost: 1}
}

// BenchmarkGRARSimplex times a full G-RAR solve (network simplex) on a
// medium benchmark.
func BenchmarkGRARSimplex(b *testing.B) {
	c, opt := mediumCircuit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Retime(c, opt, core.ApproachGRAR); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGRARSSP times the same solve through successive shortest
// paths.
func BenchmarkGRARSSP(b *testing.B) {
	c, opt := mediumCircuit(b)
	opt.Method = flow.MethodSSP
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Retime(c, opt, core.ApproachGRAR); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetimeUntraced is the no-tracer baseline of the
// instrumentation-overhead pair: the context carries no obs.Tracer, so
// every StartSpan takes the nil fast path. Compare against
// BenchmarkRetimeTraced; the disabled-path delta is budgeted < 2%.
func BenchmarkRetimeUntraced(b *testing.B) {
	c, opt := mediumCircuit(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RetimeCtx(ctx, c, opt, core.ApproachGRAR); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetimeTraced runs the same solve with a live tracer: every
// span, counter and gauge is recorded (a fresh tracer per iteration, as
// the CLI does per run).
func BenchmarkRetimeTraced(b *testing.B) {
	c, opt := mediumCircuit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := obs.New("bench")
		ctx := obs.WithTracer(context.Background(), tr)
		if _, err := core.RetimeCtx(ctx, c, opt, core.ApproachGRAR); err != nil {
			b.Fatal(err)
		}
		tr.Finish()
	}
}

// BenchmarkBaseRetiming times resiliency-unaware min-area retiming.
func BenchmarkBaseRetiming(b *testing.B) {
	c, opt := mediumCircuit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Retime(c, opt, core.ApproachBase); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRVL times the best virtual-library flow.
func BenchmarkRVL(b *testing.B) {
	c, opt := mediumCircuit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := vlib.Retime(c, vlib.Options{Scheme: opt.Scheme, EDLCost: 1, PostSwap: true}, vlib.RVL)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSTA times a full path-based timing analysis.
func BenchmarkSTA(b *testing.B) {
	c, _ := mediumCircuit(b)
	opt := sta.DefaultOptions(c.Lib)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sta.Analyze(c, opt)
	}
}

// BenchmarkTimedSimulation times the error-rate simulator.
func BenchmarkTimedSimulation(b *testing.B) {
	c, opt := mediumCircuit(b)
	tm := sta.Analyze(c, sta.DefaultOptions(c.Lib))
	res, err := core.Retime(c, opt, core.ApproachGRAR)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{Scheme: opt.Scheme, Latch: c.Lib.BaseLatch, Cycles: 100, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.ErrorRate(tm, res.Placement, res.EDMasters, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetworkSimplexRandom times the raw solver on random min-cost
// flow instances.
func BenchmarkNetworkSimplexRandom(b *testing.B) {
	benchFlowSolver(b, func(nw *flow.Network) error {
		_, err := nw.SolveSimplex()
		return err
	})
}

// BenchmarkSSPRandom times the successive-shortest-path solver on the
// same instances.
func BenchmarkSSPRandom(b *testing.B) {
	benchFlowSolver(b, func(nw *flow.Network) error {
		_, err := nw.SolveSSP()
		return err
	})
}

func benchFlowSolver(b *testing.B, solve func(*flow.Network) error) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	const n = 400
	nw := flow.NewNetwork(n)
	bal := make([]int64, n)
	for i := 0; i < 4*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		capv := int64(1 + rng.Intn(50))
		if _, err := nw.AddArc(u, v, int64(rng.Intn(20)), capv); err != nil {
			b.Fatal(err)
		}
		f := int64(rng.Intn(int(capv)))
		bal[v] += f
		bal[u] -= f
	}
	for v, d := range bal {
		nw.SetDemand(v, d)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := solve(nw); err != nil {
			b.Fatal(err)
		}
	}
}
