# Verification targets for the relatch reproduction.
#
#   make check      vet + analyzers + build + race-enabled tests + fuzz smoke
#   make test       plain test suite (the tier-1 gate)
#   make lint       static lint over examples and generated benchmarks
#   make certify    retime + certify every seed benchmark, every approach
#   make analyze    relint: the full internal/analysis rule catalogue
#   make fuzz-smoke short fuzzing pass over the Verilog parser
#   make fuzz       longer fuzzing session (override FUZZTIME)
#   make bench      regenerate BENCH_pipeline.json (perf trajectory)
#   make serve-smoke end-to-end smoke of rar -serve over real HTTP,
#                   including the SSE stage-event sequence
#   make loadgen-smoke replay jobs against rar -serve at a target rate,
#                   regenerate BENCH_serve.json (serving SLO baseline)
#   make queue-crash-smoke SIGKILL rar -serve mid-job, restart on the
#                   same -queue-dir, require the job to finish certified
#   make cluster-smoke three-node sharded cluster on loopback, SIGKILL
#                   one node mid-run, require every accepted job to
#                   finish certified; appends a cluster loadgen row to
#                   BENCH_serve.json

GO      ?= go
FUZZTIME ?= 10s
# Workers for the bench sweep; any value produces row-identical JSON
# (engine determinism contract), so parallelism is safe for the baseline.
BENCHJOBS ?= 4
# Benchmarks materialized as Verilog and re-linted through the parser;
# every built-in profile is additionally linted in-memory.
LINTBENCHES ?= s1196,s1238,s1423,s1488

.PHONY: check test vet analyze build race lint certify fuzz-smoke fuzz bench serve-smoke loadgen-smoke queue-crash-smoke cluster-smoke

check: vet analyze build race fuzz-smoke

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The repo's own invariants, machine-enforced by the internal/analysis
# catalogue (stdlib-only go/ast + go/types): map-iteration determinism
# (the PR 5 bug class), context threading, sentinel error discipline,
# journal-first ordering in the queue, hot-loop allocation hygiene, obs
# span discipline, bare-panic and stderr conventions, plus the PR 8
# concurrency suite — guarded-by fields, repo-wide lock ordering,
# goroutine lifecycle, channel ownership, atomic/plain mixing. Exit 1
# on any finding, with a per-rule count breakdown on stderr; see README
# "Static analysis" for the suppression syntax.
analyze:
	$(GO) build -o build/relint ./cmd/relint
	./build/relint ./...

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest) execution order so
# inter-test state dependencies surface; the seed prints on failure for
# reproduction with -shuffle=SEED.
race:
	$(GO) test -race -shuffle=on ./...

# lint must stay finding-free (exit 0) on everything the repo ships:
# the example programs (vet), every built-in benchmark profile, and the
# benchgen-materialized Verilog netlists re-read through the parser.
# rar -lint exits 4 on error-severity findings, failing the target.
lint:
	$(GO) vet ./examples/...
	$(GO) build -o build/rar ./cmd/rar
	$(GO) build -o build/benchgen ./cmd/benchgen
	./build/benchgen -out build/lint-benches -benchmarks $(LINTBENCHES)
	@set -e; for f in build/lint-benches/*.v; do \
		echo "lint $$f"; ./build/rar -verilog $$f -lint >/dev/null; \
	done
	@set -e; for b in $$(./build/rar -list | awk '{print $$1}'); do \
		echo "lint -bench $$b"; ./build/rar -bench $$b -lint >/dev/null; \
	done

# certify must stay finding-free on everything the repo ships: every
# seed benchmark, retimed under every approach, must produce a clean
# certificate. rar -certify exits 5 on findings, failing the target.
certify:
	$(GO) build -o build/rar ./cmd/rar
	@set -e; for b in $$(./build/rar -list | awk '{print $$1}'); do \
		for a in grar base nvl evl rvl; do \
			echo "certify -bench $$b -approach $$a"; \
			./build/rar -bench $$b -approach $$a -certify >/dev/null; \
		done; \
	done

# Perf trajectory snapshot: every seed benchmark under every approach,
# one JSON row each, with solver-effort counters (simplex pivots, SSP
# augmenting paths) pulled from the pipeline trace. The committed
# BENCH_pipeline.json is the baseline future perf PRs diff against; only
# wall_ms is machine-dependent, every other column is deterministic.
bench:
	$(GO) build -o build/rar ./cmd/rar
	./build/rar -bench-json -bench all -approach grar,base,nvl,evl,rvl -j $(BENCHJOBS) > BENCH_pipeline.json
	@echo "wrote BENCH_pipeline.json"

# End-to-end smoke of the HTTP serve mode: start rar -serve, submit a
# benchmark job over real HTTP, attach an SSE consumer to its events
# feed, poll it to completion, and require (a) a clean certificate,
# (b) the full queued → leased → solving → certifying → done stage
# sequence with a pivot-count progress event on the SSE stream, and
# (c) per-stage latency histograms on /metrics. Cleans up the server on
# any exit.
SERVEADDR ?= 127.0.0.1:18417
serve-smoke:
	$(GO) build -o build/rar ./cmd/rar
	@set -e; \
	./build/rar -serve $(SERVEADDR) -j 2 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	up=0; for i in $$(seq 1 50); do \
		if curl -fsS http://$(SERVEADDR)/healthz >/dev/null 2>&1; then up=1; break; fi; \
		sleep 0.2; \
	done; \
	test $$up = 1 || { echo "serve-smoke: server never came up"; exit 1; }; \
	curl -fsS http://$(SERVEADDR)/readyz >/dev/null \
		|| { echo "serve-smoke: /readyz not ready on a fresh server"; exit 1; }; \
	resp=$$(curl -fsS -X POST http://$(SERVEADDR)/jobs \
		-d '{"bench":"s1196","approach":"grar","c":1.0}'); \
	echo "$$resp"; \
	id=$$(printf '%s' "$$resp" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p'); \
	test -n "$$id" || { echo "serve-smoke: no job id in response"; exit 1; }; \
	curl -fsS -N -m 60 http://$(SERVEADDR)/jobs/$$id/events > build/serve-sse.out & ssepid=$$!; \
	out=; for i in $$(seq 1 100); do \
		out=$$(curl -fsS http://$(SERVEADDR)/jobs/$$id); \
		case "$$out" in \
			*'"status":"done"'*) break;; \
			*'"status":"dead"'*) echo "$$out"; exit 1;; \
		esac; \
		sleep 0.2; \
	done; \
	echo "$$out"; \
	case "$$out" in \
		*'"certified":true'*) ;; \
		*) echo "serve-smoke: job finished without a clean certificate"; exit 1;; \
	esac; \
	wait $$ssepid || { echo "serve-smoke: SSE consumer failed"; exit 1; }; \
	stages=$$(grep -o '"stage":"[a-z]*"' build/serve-sse.out | cut -d: -f2- | tr -d '"' | tr '\n' ' '); \
	echo "serve-smoke: SSE stages: $$stages"; \
	case "$$stages" in \
		"queued leased solving certifying done "*) ;; \
		*) echo "serve-smoke: bad SSE stage sequence"; cat build/serve-sse.out; exit 1;; \
	esac; \
	grep -q '"counter":"pivots"' build/serve-sse.out \
		|| { echo "serve-smoke: no pivots progress event on the SSE stream"; exit 1; }; \
	grep -q '^event: end' build/serve-sse.out \
		|| { echo "serve-smoke: SSE stream did not finish with an end event"; exit 1; }; \
	curl -fsS http://$(SERVEADDR)/metrics | grep -q '^relatch_engine_submitted_total 1$$' \
		|| { echo "serve-smoke: metrics missing submission counter"; exit 1; }; \
	curl -fsS http://$(SERVEADDR)/metrics \
		| grep -q '^relatch_job_stage_seconds_count{stage="solve"} 1$$' \
		|| { echo "serve-smoke: metrics missing solve-stage histogram"; exit 1; }; \
	echo "serve-smoke ok"

# Serving SLO baseline: replay a burst of job submissions against a
# live rar -serve at a target open-loop rate and regenerate the
# committed BENCH_serve.json (achieved throughput, p50/p95/p99 latency,
# shed/error accounting). The loadgen exits non-zero when the run is
# unhealthy — no completions, dead jobs, transport errors, or
# uncertified results — which fails the target.
LOADGENADDR ?= 127.0.0.1:18437
LOADGENN ?= 40
LOADGENRATE ?= 40
loadgen-smoke:
	$(GO) build -o build/rar ./cmd/rar
	$(GO) build -o build/loadgen ./cmd/loadgen
	@set -e; \
	./build/rar -serve $(LOADGENADDR) -j 4 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	up=0; for i in $$(seq 1 50); do \
		if curl -fsS http://$(LOADGENADDR)/healthz >/dev/null 2>&1; then up=1; break; fi; \
		sleep 0.2; \
	done; \
	test $$up = 1 || { echo "loadgen-smoke: server never came up"; exit 1; }; \
	./build/loadgen -addr http://$(LOADGENADDR) -n $(LOADGENN) -rate $(LOADGENRATE) \
		-bench s1196,s1423 -approach grar -out BENCH_serve.json; \
	grep -q '"achieved_rps": [1-9]' BENCH_serve.json \
		|| { echo "loadgen-smoke: no achieved throughput in BENCH_serve.json"; cat BENCH_serve.json; exit 1; }; \
	grep -q '"p99_ms"' BENCH_serve.json \
		|| { echo "loadgen-smoke: no p99 latency in BENCH_serve.json"; exit 1; }; \
	echo "loadgen-smoke ok; wrote BENCH_serve.json"

# Durability smoke: start rar -serve with a journal directory, submit a
# job, SIGKILL the server before it can be polled, restart on the same
# -queue-dir, and require the journaled job to be recovered and driven
# to a certified result. Exercises the write-ahead journal, the stale
# pid-lock steal, and the restart pump end to end over real HTTP.
QSMOKEADDR ?= 127.0.0.1:18427
queue-crash-smoke:
	$(GO) build -o build/rar ./cmd/rar
	@set -e; \
	qdir=$$(mktemp -d); pid=; \
	trap 'kill -9 $$pid 2>/dev/null || true; rm -rf $$qdir' EXIT; \
	./build/rar -serve $(QSMOKEADDR) -j 2 -queue-dir $$qdir & pid=$$!; \
	up=0; for i in $$(seq 1 50); do \
		if curl -fsS http://$(QSMOKEADDR)/healthz >/dev/null 2>&1; then up=1; break; fi; \
		sleep 0.2; \
	done; \
	test $$up = 1 || { echo "queue-crash-smoke: server never came up"; exit 1; }; \
	resp=$$(curl -fsS -X POST http://$(QSMOKEADDR)/jobs \
		-d '{"bench":"s1423","approach":"grar","c":1.0}'); \
	echo "$$resp"; \
	id=$$(printf '%s' "$$resp" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p'); \
	test -n "$$id" || { echo "queue-crash-smoke: no job id in response"; exit 1; }; \
	kill -9 $$pid; wait $$pid 2>/dev/null || true; \
	echo "queue-crash-smoke: killed pid $$pid, restarting on $$qdir"; \
	./build/rar -serve $(QSMOKEADDR) -j 2 -queue-dir $$qdir & pid=$$!; \
	up=0; for i in $$(seq 1 50); do \
		if curl -fsS http://$(QSMOKEADDR)/healthz >/dev/null 2>&1; then up=1; break; fi; \
		sleep 0.2; \
	done; \
	test $$up = 1 || { echo "queue-crash-smoke: server never came back"; exit 1; }; \
	out=; for i in $$(seq 1 150); do \
		out=$$(curl -fsS http://$(QSMOKEADDR)/jobs/$$id); \
		case "$$out" in \
			*'"status":"done"'*) break;; \
			*'"status":"dead"'*) echo "$$out"; exit 1;; \
		esac; \
		sleep 0.2; \
	done; \
	echo "$$out"; \
	case "$$out" in \
		*'"status":"done"'*) ;; \
		*) echo "queue-crash-smoke: job never settled after restart"; exit 1;; \
	esac; \
	case "$$out" in \
		*'"certified":true'*) ;; \
		*) echo "queue-crash-smoke: recovered job lacks a clean certificate"; exit 1;; \
	esac; \
	curl -fsS http://$(QSMOKEADDR)/readyz >/dev/null \
		|| { echo "queue-crash-smoke: restarted server not ready"; exit 1; }; \
	echo "queue-crash-smoke ok"

# Sharded-serving smoke: three rar -serve nodes on loopback form a
# static cluster (consistent-hash routing, peer cache tier, one journal
# and cache directory per node). Jobs are submitted round-robin across
# the nodes, one node is SIGKILLed mid-run and restarted on its own
# -queue-dir, and every accepted job must still reach done with a clean
# certificate — the degrade-never-fail routing and PR 6 crash recovery
# composed over real HTTP. Forwarded jobs are polled at the owner shard
# the submit response names in X-Cluster-Node — the node whose journal
# durably holds the job — so polling survives the accepting node's
# restart. Finally a
# cluster-mode loadgen row is appended to BENCH_serve.json next to the
# single-node baseline.
CS1 ?= 127.0.0.1:18451
CS2 ?= 127.0.0.1:18452
CS3 ?= 127.0.0.1:18453
CSPEERS = n1=http://$(CS1),n2=http://$(CS2),n3=http://$(CS3)
cluster-smoke:
	$(GO) build -o build/rar ./cmd/rar
	$(GO) build -o build/loadgen ./cmd/loadgen
	@set -e; \
	d=$$(mktemp -d); p1=; p2=; p3=; \
	trap 'kill -9 $$p1 $$p2 $$p3 2>/dev/null || true; rm -rf $$d' EXIT; \
	./build/rar -serve $(CS1) -j 2 -node-id n1 -peers '$(CSPEERS)' -queue-dir $$d/q1 -cache-dir $$d/c1 & p1=$$!; \
	./build/rar -serve $(CS2) -j 2 -node-id n2 -peers '$(CSPEERS)' -queue-dir $$d/q2 -cache-dir $$d/c2 & p2=$$!; \
	./build/rar -serve $(CS3) -j 2 -node-id n3 -peers '$(CSPEERS)' -queue-dir $$d/q3 -cache-dir $$d/c3 & p3=$$!; \
	for a in $(CS1) $(CS2) $(CS3); do \
		up=0; for i in $$(seq 1 50); do \
			if curl -fsS http://$$a/healthz >/dev/null 2>&1; then up=1; break; fi; \
			sleep 0.2; \
		done; \
		test $$up = 1 || { echo "cluster-smoke: $$a never came up"; exit 1; }; \
	done; \
	: > $$d/jobs; \
	submit() { \
		resp=$$(curl -fsS -D $$d/hdr -X POST http://$$1/jobs \
			-d "{\"bench\":\"s1196\",\"approach\":\"grar\",\"c\":$$2}") \
			|| { echo "cluster-smoke: submit to $$1 failed"; exit 1; }; \
		id=$$(printf '%s' "$$resp" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p'); \
		test -n "$$id" || { echo "cluster-smoke: no job id from $$1: $$resp"; exit 1; }; \
		owner=$$(sed -n 's/^[Xx]-[Cc]luster-[Nn]ode: *\([a-z0-9]*\).*/\1/p' $$d/hdr); \
		case "$$owner" in \
			n1) a=$(CS1);; n2) a=$(CS2);; n3) a=$(CS3);; *) a=$$1;; \
		esac; \
		echo "$$a $$id" >> $$d/jobs; \
	}; \
	submit $(CS1) 1.0; submit $(CS2) 1.1; submit $(CS3) 1.2; \
	submit $(CS1) 1.3; submit $(CS2) 1.4; \
	kill -9 $$p3; wait $$p3 2>/dev/null || true; \
	echo "cluster-smoke: killed n3 (pid $$p3) mid-run"; \
	submit $(CS1) 1.5; submit $(CS2) 1.6; \
	submit $(CS1) 1.7; submit $(CS2) 1.8; \
	./build/rar -serve $(CS3) -j 2 -node-id n3 -peers '$(CSPEERS)' -queue-dir $$d/q3 -cache-dir $$d/c3 & p3=$$!; \
	up=0; for i in $$(seq 1 50); do \
		if curl -fsS http://$(CS3)/healthz >/dev/null 2>&1; then up=1; break; fi; \
		sleep 0.2; \
	done; \
	test $$up = 1 || { echo "cluster-smoke: n3 never came back"; exit 1; }; \
	while read a id; do \
		ok=0; out=; for i in $$(seq 1 300); do \
			out=$$(curl -fsS http://$$a/jobs/$$id 2>/dev/null || true); \
			case "$$out" in \
				*'"status":"done"'*) \
					case "$$out" in *'"certified":true'*) ok=1;; esac; break;; \
				*'"status":"dead"'*) echo "cluster-smoke: job $$id dead: $$out"; exit 1;; \
			esac; \
			sleep 0.2; \
		done; \
		test $$ok = 1 || { echo "cluster-smoke: job $$id on $$a never finished certified: $$out"; exit 1; }; \
	done < $$d/jobs; \
	echo "cluster-smoke: all $$(wc -l < $$d/jobs) accepted jobs done-certified"; \
	curl -fsS http://$(CS1)/metrics | grep -q '^relatch_cluster_peers 2$$' \
		|| { echo "cluster-smoke: n1 metrics missing the peers gauge"; exit 1; }; \
	./build/loadgen -addr http://$(CS1),http://$(CS2),http://$(CS3) \
		-n 30 -rate 30 -bench s1196,s1423 -approach grar -append -out BENCH_serve.json; \
	grep -q '"mode": "cluster"' BENCH_serve.json \
		|| { echo "cluster-smoke: no cluster row in BENCH_serve.json"; exit 1; }; \
	echo "cluster-smoke ok"

fuzz-smoke:
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/verilog/

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=5m ./internal/verilog/
