# Verification targets for the relatch reproduction.
#
#   make check      vet + build + race-enabled tests + fuzz smoke
#   make test       plain test suite (the tier-1 gate)
#   make fuzz-smoke short fuzzing pass over the Verilog parser
#   make fuzz       longer fuzzing session (override FUZZTIME)

GO      ?= go
FUZZTIME ?= 10s

.PHONY: check test vet build race fuzz-smoke fuzz

check: vet build race fuzz-smoke

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

race:
	$(GO) test -race ./...

fuzz-smoke:
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/verilog/

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=5m ./internal/verilog/
