// Instrument runs the complete design flow the paper's system sits in:
// take a flip-flop design, cut it into two-phase master/slave form,
// retime the slaves with G-RAR, map the surviving error-detecting
// masters back onto the sequential design, and emit the instrumented
// resilient netlist — shadow flip-flops, XOR comparators and clustered
// OR-tree error outputs (Fig. 2) — as structural Verilog on stdout.
//
//	go run ./examples/instrument
package main

import (
	"fmt"
	"log"
	"log/slog"
	"os"
	"sort"
	"strings"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/core"
	"relatch/internal/edl"
	"relatch/internal/obs"
	"relatch/internal/verilog"
)

func main() {
	info := obs.NewLogger(os.Stderr, slog.LevelInfo)
	lib := cell.Default(1.0)
	prof, _ := bench.ProfileByName("s1196")
	seq, err := prof.BuildSeq(lib)
	if err != nil {
		log.Fatal(err)
	}
	c, scheme, err := prof.CutAndCalibrate(seq)
	if err != nil {
		log.Fatal(err)
	}

	res, err := core.Retime(c, core.Options{Scheme: scheme, EDLCost: 1}, core.ApproachGRAR)
	if err != nil {
		log.Fatal(err)
	}
	var protect []string
	for id := range res.EDMasters {
		name := c.Nodes[id].Name
		if ff := strings.TrimSuffix(name, "/D"); ff != name {
			protect = append(protect, ff)
		}
	}
	sort.Strings(protect)
	info.Info("retimed", "ed_masters", len(protect), "names", fmt.Sprintf("%v", protect))

	inst, err := edl.Instrument(seq, protect, 8)
	if err != nil {
		log.Fatal(err)
	}
	info.Info("instrumented",
		"flops", len(inst.FFs), "shadow", len(inst.FFs)-len(seq.FFs),
		"gates", inst.GateCount(), "detection", inst.GateCount()-seq.GateCount())
	overhead := edl.OverheadFactor(lib, edl.ShadowFF, 8)
	info.Info("overhead", "c", fmt.Sprintf("%.2f", overhead), "paper_sweep", "0.5-2")

	if err := verilog.Write(os.Stdout, inst); err != nil {
		log.Fatal(err)
	}
}
