// Instrument runs the complete design flow the paper's system sits in:
// take a flip-flop design, cut it into two-phase master/slave form,
// retime the slaves with G-RAR, map the surviving error-detecting
// masters back onto the sequential design, and emit the instrumented
// resilient netlist — shadow flip-flops, XOR comparators and clustered
// OR-tree error outputs (Fig. 2) — as structural Verilog on stdout.
//
//	go run ./examples/instrument
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/core"
	"relatch/internal/edl"
	"relatch/internal/verilog"
)

func main() {
	lib := cell.Default(1.0)
	prof, _ := bench.ProfileByName("s1196")
	seq, err := prof.BuildSeq(lib)
	if err != nil {
		log.Fatal(err)
	}
	c, scheme, err := prof.CutAndCalibrate(seq)
	if err != nil {
		log.Fatal(err)
	}

	res, err := core.Retime(c, core.Options{Scheme: scheme, EDLCost: 1}, core.ApproachGRAR)
	if err != nil {
		log.Fatal(err)
	}
	var protect []string
	for id := range res.EDMasters {
		name := c.Nodes[id].Name
		if ff := strings.TrimSuffix(name, "/D"); ff != name {
			protect = append(protect, ff)
		}
	}
	sort.Strings(protect)
	fmt.Fprintf(os.Stderr, "G-RAR leaves %d error-detecting masters: %v\n", len(protect), protect)

	inst, err := edl.Instrument(seq, protect, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "instrumented: %d flops (+%d shadow), %d gates (+%d detection)\n",
		len(inst.FFs), len(inst.FFs)-len(seq.FFs),
		inst.GateCount(), inst.GateCount()-seq.GateCount())
	overhead := edl.OverheadFactor(lib, edl.ShadowFF, 8)
	fmt.Fprintf(os.Stderr, "amortized shadow-FF overhead factor c = %.2f (the paper sweeps 0.5-2)\n", overhead)

	if err := verilog.Write(os.Stdout, inst); err != nil {
		log.Fatal(err)
	}
}
