// Plasma retimes the 3-stage MIPS-like CPU benchmark (the stand-in for
// the paper's Plasma open core) with base retiming, G-RAR and RVL-RAR
// across the three EDL overheads, printing the per-approach areas — a
// one-circuit slice of the paper's Tables IV–VI.
//
//	go run ./examples/plasma
package main

import (
	"fmt"
	"log"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/core"
	"relatch/internal/report"
	"relatch/internal/vlib"
)

func main() {
	lib := cell.Default(1.0)
	prof, _ := bench.ProfileByName("Plasma")
	c, scheme, err := prof.Build(lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Plasma: %d gates, %d boundary registers, logic depth %d\n",
		c.GateCount(), c.FlopCount(), c.LogicDepth())
	fmt.Printf("clocking: %s\n\n", scheme)

	t := report.New("Plasma retiming comparison",
		"c", "approach", "slaves", "EDL", "seq area", "total area", "runtime")
	for _, ov := range []float64{0.5, 1.0, 2.0} {
		opt := core.Options{Scheme: scheme, EDLCost: ov}
		base, err := core.Retime(c, opt, core.ApproachBase)
		if err != nil {
			log.Fatal(err)
		}
		grar, err := core.Retime(c, opt, core.ApproachGRAR)
		if err != nil {
			log.Fatal(err)
		}
		rvl, err := vlib.Retime(c, vlib.Options{Scheme: scheme, EDLCost: ov, PostSwap: true}, vlib.RVL)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(fmt.Sprintf("%g", ov), "base", report.I(base.SlaveCount), report.I(base.EDCount),
			report.F(base.SeqArea, 1), report.F(base.TotalArea, 1), base.Runtime.Round(1e6).String())
		t.AddRow("", "rvl-rar", report.I(rvl.SlaveCount), report.I(rvl.EDCount),
			report.F(rvl.SeqArea, 1), report.F(rvl.TotalArea, 1), rvl.Runtime.Round(1e6).String())
		t.AddRow("", "g-rar", report.I(grar.SlaveCount), report.I(grar.EDCount),
			report.F(grar.SeqArea, 1), report.F(grar.TotalArea, 1), grar.Runtime.Round(1e6).String())
	}
	fmt.Print(t.String())
}
