// Quickstart: build a tiny two-phase latch-based pipeline stage, retime
// its slave latches with G-RAR, and compare against resiliency-unaware
// base retiming.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/core"
	"relatch/internal/netlist"
	"relatch/internal/sta"
)

func main() {
	// A standard-cell library with an EDL overhead of c = 1: an
	// error-detecting latch costs twice the area of a plain latch.
	lib := cell.Default(1.0)

	// Build a small cloud by hand: two master-driven inputs, a few
	// gates, two master endpoints. In a real flow this comes from
	// cutting a flip-flop netlist at its registers (see netlist.Cut or
	// the verilog package).
	b := netlist.NewBuilder("quickstart", lib)
	a := b.Input("a", 0)
	x := b.Input("x", 1)
	g1 := b.Gate("g1", lib.MustCell(cell.FuncNand2, 1), a, x)
	g2 := b.Gate("g2", lib.MustCell(cell.FuncInv, 1), g1)
	g3 := b.Gate("g3", lib.MustCell(cell.FuncXor2, 1), g2, x)
	g4 := b.Gate("g4", lib.MustCell(cell.FuncAnd2, 1), g3, g1)
	// A deep tail towards z: its master is error-detecting unless the
	// slave latches move forward past the point base retiming prefers.
	tail := g4
	for i := 0; i < 4; i++ {
		tail = b.Gate(fmt.Sprintf("t%d", i), lib.MustCell(cell.FuncXnor2, 1), tail, g3)
	}
	b.Output("y", 2, g4)
	b.Output("z", 3, tail)
	c, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Derive a symmetric two-phase clock scheme from the circuit's
	// timing (Π = 0.7P, resiliency window φ1 = 0.3P).
	scheme := bench.SchemeFor(c, sta.DefaultOptions(lib))
	fmt.Println("clocking:", scheme)
	fmt.Print(scheme.Waveform(48))

	for _, approach := range []core.Approach{core.ApproachBase, core.ApproachGRAR} {
		res, err := core.Retime(c, core.Options{Scheme: scheme, EDLCost: 1.0}, approach)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s retiming:\n", approach)
		fmt.Printf("  slave latches: %d (shared across fanout)\n", res.SlaveCount)
		fmt.Printf("  error-detecting masters: %d of %d\n", res.EDCount, res.MasterCount)
		fmt.Printf("  sequential area: %.2f   total area: %.2f\n", res.SeqArea, res.TotalArea)
		fmt.Printf("  latches sit at the outputs of:")
		for _, id := range res.Placement.LatchedDrivers() {
			fmt.Printf(" %s", c.Nodes[id].Name)
		}
		fmt.Println()
	}
}
