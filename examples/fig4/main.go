// Fig4 walks through the paper's worked example (Figures 3, 4 and 5):
// the nine-node circuit, its timing tables, the retiming regions, the
// cut set g(O9), the two candidate cuts, and the network-flow solve that
// picks the paper's optimal retiming.
//
//	go run ./examples/fig4
package main

import (
	"fmt"
	"log"
	"sort"

	"relatch/internal/core"
	"relatch/internal/fig4"
	"relatch/internal/netlist"
	"relatch/internal/rgraph"
	"relatch/internal/sta"
)

func main() {
	c := fig4.MustCircuit()
	scheme := fig4.Scheme()
	fmt.Println("clocking:", scheme)
	fmt.Print(scheme.Waveform(40))

	tm := sta.Analyze(c, sta.Options{
		Model:       sta.ModelFixed,
		FixedDelays: fig4.FixedDelays(c),
	})
	o9, _ := c.Node("O9")
	db := tm.BackwardMap(o9)

	fmt.Println("\nFig. 4 timing table (d, D^f, D^b to O9):")
	for _, n := range c.Nodes {
		fmt.Printf("  %-3s d=%-3g D^f=%-3g D^b=%g\n",
			n.Name, fig4.Delays[n.Name], tm.Df(n), db[n.ID])
	}

	g, err := rgraph.Build(c, tm, rgraph.Config{
		Scheme:         scheme,
		Latch:          fig4.ZeroLatch(),
		EDLCost:        fig4.EDLOverhead,
		ResilientAware: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nretiming regions (Section IV-B):\n")
	fmt.Printf("  V_m = %v (latches must retime through)\n", names(c, g.Vm))
	fmt.Printf("  V_n = %v (latches must not pass)\n", names(c, g.Vn))
	fmt.Printf("  V_r = %v (free)\n", names(c, g.Vr))
	var gt []string
	for _, id := range g.GT[o9.ID] {
		gt = append(gt, c.Nodes[id].Name)
	}
	fmt.Printf("  g(O9) = %v (Eq. 8-9 cut set)\n", gt)

	opt := core.Options{
		Scheme:      scheme,
		EDLCost:     fig4.EDLOverhead,
		TimingModel: sta.ModelFixed,
		FixedDelays: fig4.FixedDelays(c),
	}

	fmt.Println("\ncandidate cuts (Section III):")
	cuts := []struct {
		name string
		p    *netlist.Placement
	}{{"Cut1", fig4.Cut1(c)}, {"Cut2", fig4.Cut2(c)}}
	for _, cut := range cuts {
		name, p := cut.name, cut.p
		res, err := core.Evaluate(c, opt, p)
		if err != nil {
			log.Fatal(err)
		}
		la := sta.AnalyzeLatched(tm, p, scheme, fig4.ZeroLatch())
		cost := float64(res.SlaveCount) + fig4.EDLOverhead*float64(res.EDCount) + 1
		fmt.Printf("  %s: arrival at O9 = %g, %d slaves, O9 error-detecting: %v, cost %g units\n",
			name, la.EndpointArrival(o9), res.SlaveCount, res.EDMasters[o9.ID], cost)
	}

	res, err := core.Retime(c, opt, core.ApproachGRAR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nG-RAR network-flow solve picks %d slaves, %d error-detecting (the paper's Cut2):\n",
		res.SlaveCount, res.EDCount)
	for _, id := range res.Placement.LatchedDrivers() {
		fmt.Printf("  slave latch at output of %s\n", c.Nodes[id].Name)
	}
}

func names(c *netlist.Circuit, ids map[int]bool) []string {
	var out []string
	for id := range ids {
		out = append(out, c.Nodes[id].Name)
	}
	sort.Strings(out)
	return out
}
