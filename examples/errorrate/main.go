// Errorrate simulates a benchmark before and after resilient-aware
// retiming and reports how often the error-detecting masters fire — the
// measurement behind the paper's Table VIII.
//
//	go run ./examples/errorrate
package main

import (
	"fmt"
	"log"

	"relatch/internal/bench"
	"relatch/internal/cell"
	"relatch/internal/core"
	"relatch/internal/netlist"
	"relatch/internal/sim"
	"relatch/internal/sta"
)

func main() {
	lib := cell.Default(1.0)
	prof, _ := bench.ProfileByName("s1423")
	c, scheme, err := prof.Build(lib)
	if err != nil {
		log.Fatal(err)
	}
	tm := sta.Analyze(c, sta.DefaultOptions(lib))
	cfg := sim.Config{Scheme: scheme, Latch: lib.BaseLatch, Cycles: 2000, Seed: 7}

	// Before retiming: slaves at their initial positions, error
	// detection wherever the window is hit.
	initial := netlist.InitialPlacement(c)
	la := sta.AnalyzeLatched(tm, initial, scheme, lib.BaseLatch)
	st, err := sim.ErrorRate(tm, initial, la.EDMasters(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s before retiming: %d error-detecting masters, error rate %.2f%% (%d detections in %d cycles)\n",
		prof.Name, len(la.EDMasters()), st.ErrorRate, st.DetectedTransitions, st.Cycles)

	for _, approach := range []core.Approach{core.ApproachBase, core.ApproachGRAR} {
		res, err := core.Retime(c, core.Options{Scheme: scheme, EDLCost: 1}, approach)
		if err != nil {
			log.Fatal(err)
		}
		st, err := sim.ErrorRate(tm, res.Placement, res.EDMasters, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s after %s: %d error-detecting masters, error rate %.2f%%\n",
			prof.Name, approach, res.EDCount, st.ErrorRate)
		if st.MissedViolations != 0 || st.HardFailures != 0 {
			log.Fatalf("soundness failure: %d missed, %d hard", st.MissedViolations, st.HardFailures)
		}
	}
}
